"""Kernel templates: MiniLang snippets embodying the paper's
optimization-opportunity classes (Section 2).

Each builder returns ``(declarations, function_source, call_expr)``
where ``call_expr`` is how ``main`` invokes the kernel with the loop
counter ``i`` in scope.  A seeded :class:`random.Random` parameterizes
constants, thresholds and shapes so every generated benchmark is unique
but reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class Kernel:
    """One generated kernel: optional class decls + the function text."""

    name: str
    declarations: str
    function: str
    call: str
    #: which opportunity class this kernel exercises (for reporting)
    kind: str


def _payload(rng: random.Random, var: str, lines: int) -> str:
    """Non-foldable arithmetic that shares the merge block with the
    opportunity.  Duplication must copy it into the predecessors, which
    is exactly where the paper's code-size cost comes from: real merge
    blocks are rarely *only* the optimizable instruction."""
    statements = []
    for _ in range(lines):
        op = rng.choice(["+", "^", "-", "|"])
        shift = rng.randint(1, 7)
        statements.append(
            f"  {var} = ({var} {op} ({var} >> {shift})) + {rng.randint(1, 63)};"
        )
    return "\n".join(statements)


def cf_kernel(name: str, rng: random.Random) -> Kernel:
    """Constant folding after duplication (Figure 1)."""
    threshold = rng.randint(0, 40)
    const = rng.randint(0, 9)
    add = rng.randint(1, 99)
    mul = rng.choice([2, 3, 5, 7])
    payload = _payload(rng, "w", rng.randint(2, 5))
    fn = f"""
fn {name}(x: int, y: int) -> int {{
  var p: int;
  var w: int = y;
  if (x > {threshold}) {{ p = x; }} else {{ p = {const}; }}
{payload}
  return {add} + p * {mul} + w;
}}
"""
    return Kernel(name, "", fn, f"{name}(i, i + {rng.randint(1, 30)})", "constant-folding")


def ce_kernel(name: str, rng: random.Random) -> Kernel:
    """Conditional elimination after duplication (Listing 1)."""
    threshold = rng.randint(5, 30)
    const = threshold + rng.randint(1, 10)
    payload = _payload(rng, "w", rng.randint(2, 4))
    fn = f"""
fn {name}(i: int) -> int {{
  var p: int;
  var w: int = i;
  if (i > 0) {{ p = i; }} else {{ p = {const}; }}
{payload}
  if (p > {threshold}) {{ return {threshold} + w; }}
  return i + w;
}}
"""
    return Kernel(name, "", fn, f"{name}(i)", "conditional-elimination")


def cold_path_kernel(name: str, rng: random.Random) -> Kernel:
    """An opportunity on a *rarely taken* path behind a bulky merge.

    The trade-off tier should reject it (probability-scaled benefit
    below the copy cost) while dupalot duplicates anyway — this kernel
    class drives the code-size/compile-time gap between the two
    configurations in Figures 5–8.
    """
    modulus = rng.choice([61, 83, 97])
    mul = rng.choice([3, 5, 7])
    payload = _payload(rng, "w", rng.randint(5, 9))
    fn = f"""
fn {name}(x: int) -> int {{
  var p: int;
  var w: int = x;
  if (x % {modulus} == 0) {{ p = 0; }} else {{ p = x; }}
{payload}
  return p * {mul} + w;
}}
"""
    return Kernel(name, "", fn, f"{name}(i)", "cold-path")


def pea_kernel(name: str, rng: random.Random, class_id: int) -> Kernel:
    """Partial escape analysis / boxing elimination (Listing 3).

    Both phi inputs are allocations — the auto-boxing pattern the paper
    calls out as frequent in Java and Scala.
    """
    cls = f"Box{class_id}"
    threshold = rng.randint(0, 20)
    const = rng.randint(0, 99)
    decl = f"class {cls} {{ val: int; }}\n"
    payload = _payload(rng, "w", rng.randint(3, 6))
    fn = f"""
fn {name}(x: int, y: int) -> int {{
  var b: {cls};
  var w: int = y;
  if (x > {threshold}) {{ b = new {cls} {{ val = x }}; }}
  else {{ b = new {cls} {{ val = {const} }}; }}
{payload}
  return b.val + {rng.randint(1, 50)} + w;
}}
"""
    return Kernel(
        name, decl, fn, f"{name}(i, i * {rng.randint(2, 5)})", "partial-escape-analysis"
    )


def readelim_kernel(name: str, rng: random.Random, class_id: int) -> Kernel:
    """Partially redundant read promoted by duplication (Listing 5)."""
    cls = f"Rec{class_id}"
    glob = f"g_{name}"
    decl = f"class {cls} {{ x: int; }}\nglobal {glob}: int;\n"
    threshold = rng.randint(0, 15)
    fn = f"""
fn {name}(a: {cls}, i: int) -> int {{
  if (i > {threshold}) {{ {glob} = a.x; }} else {{ {glob} = 0; }}
  return a.x;
}}
fn {name}_drive(i: int) -> int {{
  var r: {cls} = new {cls} {{ x = i * {rng.randint(2, 9)} }};
  return {name}(r, i);
}}
"""
    return Kernel(name, decl, fn, f"{name}_drive(i)", "read-elimination")


def strength_kernel(name: str, rng: random.Random) -> Kernel:
    """Division by a phi that is a power of two on one path (Figure 3)."""
    power = rng.choice([2, 4, 8, 16])
    threshold = rng.randint(0, 25)
    fn = f"""
fn {name}(x: int, a: int) -> int {{
  var d: int;
  if (a > {threshold}) {{ d = a; }} else {{ d = {power}; }}
  if (x >= 0) {{ return x / d; }}
  return 0 - x;
}}
"""
    return Kernel(name, "", fn, f"{name}(i, i - {rng.randint(1, 20)})", "strength-reduction")


def typecheck_kernel(name: str, rng: random.Random, class_id: int) -> Kernel:
    """Repeated null checks collapsed by duplication + CE — the Scala
    type/class-hierarchy pattern of Stadler et al. that the paper cites."""
    cls = f"Node{class_id}"
    decl = f"class {cls} {{ x: int; }}\n"
    const = rng.randint(1, 60)
    modulus = rng.randint(2, 5)
    payload = _payload(rng, "w", rng.randint(2, 5))
    fn = f"""
fn {name}(a: {cls}, y: int) -> int {{
  var r: int;
  var w: int = y;
  if (a != null) {{ r = a.x; }} else {{ r = {const}; }}
{payload}
  if (a != null) {{ return r + a.x + w; }}
  return r + w;
}}
fn {name}_drive(i: int) -> int {{
  var n: {cls} = null;
  if (i % {modulus} > 0) {{ n = new {cls} {{ x = i }}; }}
  return {name}(n, i);
}}
"""
    return Kernel(name, decl, fn, f"{name}_drive(i)", "type-check")


def array_kernel(name: str, rng: random.Random) -> Kernel:
    """Array traversal with a duplicable merge inside the hot loop —
    the Octane-style numeric workload shape."""
    length = rng.randint(8, 24)
    threshold = rng.randint(0, length)
    const = rng.randint(0, 9)
    mul = rng.choice([2, 3, 4])
    fn = f"""
fn {name}(n: int) -> int {{
  var buf: int[] = new int[{length}];
  var i: int = 0;
  while (i < len(buf)) {{ buf[i] = i + n; i = i + 1; }}
  var acc: int = 0;
  var j: int = 0;
  while (j < len(buf)) {{
    var v: int;
    var w: int = acc;
    if (buf[j] > {threshold}) {{ v = buf[j]; }} else {{ v = {const}; }}
{_payload(rng, "w", rng.randint(1, 2))}
    acc = acc + v * {mul} + (w & 255);
    j = j + 1;
  }}
  return acc;
}}
"""
    return Kernel(name, "", fn, f"{name}(i)", "array-loop")


def array_box_kernel(name: str, rng: random.Random, class_id: int) -> Kernel:
    """Objects allocated per iteration of a hot array loop — the
    JavaScript-engine pattern (everything is an object) that makes
    Octane the paper's most duplication-friendly suite: the phi of two
    allocations un-escapes once the merge is duplicated."""
    cls = f"Cell{class_id}"
    decl = f"class {cls} {{ val: int; }}\n"
    length = rng.randint(8, 20)
    threshold = rng.randint(0, length)
    const = rng.randint(0, 9)
    mul = rng.choice([2, 3, 5])
    fn = f"""
fn {name}(n: int) -> int {{
  var buf: int[] = new int[{length}];
  var i: int = 0;
  while (i < len(buf)) {{ buf[i] = i + n; i = i + 1; }}
  var acc: int = 0;
  var j: int = 0;
  while (j < len(buf)) {{
    var b: {cls};
    if (buf[j] > {threshold}) {{ b = new {cls} {{ val = buf[j] }}; }}
    else {{ b = new {cls} {{ val = {const} }}; }}
    acc = acc + b.val * {mul};
    j = j + 1;
  }}
  return acc;
}}
"""
    return Kernel(name, decl, fn, f"{name}(i)", "array-box")


def neutral_kernel(name: str, rng: random.Random) -> Kernel:
    """Plain computation with no duplication opportunity: keeps the
    suites honest (duplication must not help everywhere)."""
    iterations = rng.randint(4, 16)
    mul = rng.choice([31, 33, 37])
    fn = f"""
fn {name}(x: int) -> int {{
  var acc: int = x;
  var i: int = 0;
  while (i < {iterations}) {{
    acc = acc * {mul} + i;
    i = i + 1;
  }}
  return acc;
}}
"""
    return Kernel(name, "", fn, f"{name}(i)", "neutral")


def recursion_kernel(name: str, rng: random.Random) -> Kernel:
    """Self-recursive descent — the call-heavy shape that stresses the
    per-call overhead of every engine.  The megaunit compiler lowers the
    recursive call to a direct Python call, so this kernel (and the
    RECURSION suite built on it) is the floor guard against the
    whole-program compiler regressing call-dominated programs.

    Depth stays small (< 48): the reference interpreter burns several
    Python frames per MiniLang call, and suites must run on the default
    recursion limit with headroom to spare.
    """
    depth = rng.randint(24, 40)
    add = rng.randint(1, 9)
    mul = rng.choice([3, 5, 7])
    fn = f"""
fn {name}(n: int, acc: int) -> int {{
  if (n <= 0) {{ return acc; }}
  return {name}(n - 1, acc * {mul} % 65521 + n + {add});
}}
"""
    return Kernel(
        name, "", fn, f"{name}(i % {depth} + 8, i)", "recursion"
    )


def call_tree_kernel(name: str, rng: random.Random) -> Kernel:
    """Binary call tree — two recursive calls per activation, so the
    call count grows exponentially in a depth that stays tiny.  Mixes
    call overhead with a duplicable merge in the combiner, exercising
    both the direct-call lowering and the usual merge machinery."""
    depth = rng.randint(5, 7)
    threshold = rng.randint(2, 12)
    add = rng.randint(1, 30)
    fn = f"""
fn {name}(d: int, x: int) -> int {{
  if (d <= 0) {{ return x + {add}; }}
  var l: int = {name}(d - 1, x + 1);
  var r: int = {name}(d - 1, x + 2);
  var p: int;
  if (l > {threshold}) {{ p = l; }} else {{ p = r; }}
  return p + (l ^ r);
}}
"""
    return Kernel(name, "", fn, f"{name}({depth}, i)", "call-tree")


def chain_kernel(name: str, rng: random.Random, class_id: int) -> Kernel:
    """Field-chain reads with merges between them: mixes read
    elimination and conditional elimination opportunities."""
    cls = f"Pair{class_id}"
    decl = f"class {cls} {{ a: int; b: int; }}\n"
    threshold = rng.randint(0, 30)
    payload = _payload(rng, "w", rng.randint(2, 4))
    fn = f"""
fn {name}(p: {cls}, i: int) -> int {{
  var t: int;
  var w: int = i;
  if (i > {threshold}) {{ t = p.a; }} else {{ t = p.b; }}
{payload}
  return t + p.a + p.b + w;
}}
fn {name}_drive(i: int) -> int {{
  var p: {cls} = new {cls} {{ a = i, b = i * 3 }};
  return {name}(p, i);
}}
"""
    return Kernel(name, decl, fn, f"{name}_drive(i)", "field-chain")


#: Builders keyed by kind; suite profiles draw from these.
KERNEL_BUILDERS = {
    "constant-folding": cf_kernel,
    "conditional-elimination": ce_kernel,
    "cold-path": cold_path_kernel,
    "partial-escape-analysis": pea_kernel,
    "read-elimination": readelim_kernel,
    "strength-reduction": strength_kernel,
    "type-check": typecheck_kernel,
    "array-loop": array_kernel,
    "array-box": array_box_kernel,
    "neutral": neutral_kernel,
    "field-chain": chain_kernel,
    "recursion": recursion_kernel,
    "call-tree": call_tree_kernel,
}

#: Builders that need a unique class id as third argument.
NEEDS_CLASS_ID = {
    "partial-escape-analysis",
    "read-elimination",
    "type-check",
    "field-chain",
    "array-box",
}


def build_kernel(kind: str, name: str, rng: random.Random, class_id: int) -> Kernel:
    builder = KERNEL_BUILDERS[kind]
    if kind in NEEDS_CLASS_ID:
        return builder(name, rng, class_id)
    return builder(name, rng)
