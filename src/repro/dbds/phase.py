"""The three-tier DBDS driver: simulate → trade-off → optimize.

Follows Section 5.2: the whole pipeline is applied iteratively with an
upper bound of three iterations (one duplication can expose the next
opportunity, and duplication across multiple merges at once is not
supported); another iteration only runs when the previous one produced
enough cumulative benefit.  Duplication stops when the compilation
unit's size budget or the absolute unit-size cap is hit — both enforced
inside the trade-off predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..costmodel.estimator import graph_code_size
from ..ir.cfgutils import canonical_cfg_cleanup
from ..ir.graph import Graph, Program
from ..ir.loops import LoopForest
from ..ir.nodes import Goto
from ..ir.verifier import verify_graph
from ..obs.metrics import current_registry
from ..obs.tracer import NULL_TRACER, Tracer, current_tracer
from ..opts.base import Phase
from ..opts.canonicalize import CanonicalizerPhase
from ..opts.condelim import ConditionalEliminationPhase
from ..opts.gvn import GlobalValueNumberingPhase
from ..opts.pea import PartialEscapeAnalysisPhase
from ..opts.readelim import ReadEliminationPhase
from .duplicate import can_duplicate, duplicate_into
from .simulation import SimulationResult, SimulationTier
from .tradeoff import (
    REASON_INVALIDATED,
    TradeOffConfig,
    TradeOffDecision,
    emit_decision,
    evaluate_candidate,
    sort_candidates,
)


@dataclass
class DbdsConfig:
    """Behavioural switches of the DBDS phase."""

    trade_off: TradeOffConfig = field(default_factory=TradeOffConfig)
    #: maximum simulate→trade-off→optimize rounds (paper: 3)
    max_iterations: int = 3
    #: minimum cumulative weighted benefit to justify another round
    iteration_benefit_threshold: float = 1.0
    #: dupalot mode: perform every positive-benefit duplication, no
    #: cost/benefit trade-off (the paper's comparison configuration)
    dupalot: bool = False
    #: run the verifier after every duplication (tests enable this)
    paranoid: bool = False
    #: Section 8 future work: after a kept duplication, keep duplicating
    #: along the resulting Goto chain through further merges in the same
    #: pass ("duplicate over multiple merges along paths")
    path_duplication: bool = False
    #: maximum extra merges to absorb along one path
    max_path_length: int = 3


@dataclass
class DbdsStats:
    """Phase outcome for reporting.

    Since the telemetry subsystem landed this is a *view* over the
    tracer's counters — ``candidates_simulated`` and
    ``duplications_performed`` are the per-run deltas of the
    ``dbds.candidates`` / ``dbds.duplications`` counters, and every
    accept/reject is also available as a ``dbds.decision`` event when
    event recording is on.
    """

    candidates_simulated: int = 0
    duplications_performed: int = 0
    iterations: int = 0
    initial_size: float = 0.0
    final_size: float = 0.0


class DbdsPhase(Phase):
    """Dominance-based duplication simulation, end to end."""

    name = "dbds"

    def __init__(self, program: Optional[Program] = None, config: Optional[DbdsConfig] = None) -> None:
        self.program = program
        self.config = config or DbdsConfig()

    def run(self, graph: Graph) -> DbdsStats:
        config = self.config
        tracer = current_tracer()
        if tracer is NULL_TRACER:
            # Standalone use (tests, examples): counters must still
            # tally for the stats view, so swap in a counting tracer.
            tracer = Tracer(enabled=False)
        candidates_before = tracer.counter("dbds.candidates")
        duplications_before = tracer.counter("dbds.duplications")
        stats = DbdsStats(initial_size=graph_code_size(graph))
        initial_size = stats.initial_size
        for iteration in range(config.max_iterations):
            stats.iterations += 1
            # ---------------- Tier 1: simulation -----------------------
            tier = SimulationTier(graph, self.program)
            candidates = tier.run()
            tracer.count("dbds.candidates", len(candidates))
            if candidates:
                current_registry().inc(
                    "repro_dbds_candidates_total", len(candidates)
                )
            # ---------------- Tier 2: trade-off -------------------------
            ranked = sort_candidates(candidates, config.trade_off)
            # ---------------- Tier 3: optimization ----------------------
            round_benefit = self._optimize(
                graph, ranked, initial_size, tracer, iteration
            )
            self._partial_optimizations(graph)
            if round_benefit < config.iteration_benefit_threshold:
                break
        stats.candidates_simulated = (
            tracer.counter("dbds.candidates") - candidates_before
        )
        stats.duplications_performed = (
            tracer.counter("dbds.duplications") - duplications_before
        )
        stats.final_size = graph_code_size(graph)
        return stats

    # ------------------------------------------------------------------
    def _decide(
        self, candidate: SimulationResult, current_size: float, initial_size: float
    ) -> TradeOffDecision:
        """Evaluate one candidate under the configured policy (the
        dupalot configuration skips the cost/benefit trade-off)."""
        config = self.config
        if config.dupalot:
            return TradeOffDecision(
                weighted=candidate.weighted_benefit,
                threshold_term=candidate.benefit > 0,
                unit_size_term=current_size < config.trade_off.max_unit_size,
                budget_term=True,
                current_size=current_size,
                initial_size=initial_size,
            )
        return evaluate_candidate(
            candidate, current_size, initial_size, config.trade_off
        )

    def _record_applied(
        self, tracer: Tracer, candidate: SimulationResult
    ) -> None:
        """Attribute the enabled optimizations to this duplication."""
        tracer.count("dbds.duplications")
        current_registry().inc("repro_dbds_duplications_total")
        for reason in candidate.reasons:
            tracer.count(f"dbds.applied.{reason}")

    # ------------------------------------------------------------------
    def _optimize(
        self,
        graph: Graph,
        ranked: list[SimulationResult],
        initial_size: float,
        tracer: Tracer,
        iteration: int,
    ) -> float:
        config = self.config
        mode = "dupalot" if config.dupalot else "dbds"
        round_benefit = 0.0
        loops = graph.loop_forest()
        structure_dirty = False
        for candidate in ranked:
            if structure_dirty:
                loops = graph.loop_forest()
                structure_dirty = False
            if not self._still_valid(graph, candidate, loops):
                tracer.count("dbds.decision.invalidated")
                current_registry().inc(
                    "repro_dbds_decisions_total", outcome="invalidated"
                )
                tracer.event(
                    "dbds.decision",
                    graph=graph.name,
                    merge=candidate.merge.name,
                    pred=candidate.pred.name,
                    benefit=candidate.benefit,
                    cost=candidate.cost,
                    probability=candidate.probability,
                    accepted=False,
                    reason=REASON_INVALIDATED,
                    iteration=iteration,
                    mode=mode,
                )
                continue
            current_size = graph_code_size(graph)
            decision = self._decide(candidate, current_size, initial_size)
            emit_decision(
                tracer, graph.name, candidate, decision,
                iteration=iteration, mode=mode,
            )
            if not decision.accepted:
                continue
            duplicate_into(graph, candidate.pred, candidate.merge)
            if config.paranoid:
                verify_graph(graph)
            self._record_applied(tracer, candidate)
            round_benefit += candidate.weighted_benefit
            structure_dirty = True
            if config.path_duplication:
                round_benefit += self._extend_along_path(
                    graph, candidate.pred, initial_size, tracer, iteration
                )
        return round_benefit

    def _extend_along_path(
        self,
        graph: Graph,
        pred,
        initial_size: float,
        tracer: Tracer,
        iteration: int,
    ) -> float:
        """Section 8 future work: the predecessor just absorbed a merge;
        if it now ends in a Goto to *another* merge, keep specializing
        along the path (re-simulating each hop) up to max_path_length."""
        config = self.config
        gained = 0.0
        for _ in range(config.max_path_length):
            # Cash in the copies made so far: folding them turns the
            # next merge's phi input into the specialized value the
            # re-simulation needs to see (the simulation tier proper
            # gets this for free from its synonym maps).
            CanonicalizerPhase().run(graph)
            if pred not in graph.blocks:
                break  # cleanup fused the predecessor away
            terminator = pred.terminator
            if not isinstance(terminator, Goto):
                break
            next_merge = terminator.target
            loops = graph.loop_forest()
            if not can_duplicate(graph, pred, next_merge, loops):
                break
            tier = SimulationTier(graph, self.program)
            match = next(
                (
                    r
                    for r in tier.run()
                    if r.pred is pred and r.merge is next_merge
                ),
                None,
            )
            if match is None:
                break
            current_size = graph_code_size(graph)
            decision = self._decide(match, current_size, initial_size)
            emit_decision(
                tracer, graph.name, match, decision,
                iteration=iteration, mode="path",
            )
            if not decision.accepted:
                break
            duplicate_into(graph, pred, next_merge)
            if config.paranoid:
                verify_graph(graph)
            self._record_applied(tracer, match)
            gained += match.weighted_benefit
        return gained

    @staticmethod
    def _still_valid(graph: Graph, candidate: SimulationResult, loops: LoopForest) -> bool:
        """Earlier duplications this round may have restructured the CFG;
        drop candidates whose pair no longer exists as simulated."""
        if candidate.merge not in graph.blocks or candidate.pred not in graph.blocks:
            return False
        return can_duplicate(graph, candidate.pred, candidate.merge, loops)

    # ------------------------------------------------------------------
    def _partial_optimizations(self, graph: Graph) -> None:
        """The follow-up optimizations whose potential the simulation
        detected (shared action steps, applied for real)."""
        CanonicalizerPhase().run(graph)
        GlobalValueNumberingPhase().run(graph)
        ConditionalEliminationPhase().run(graph)
        ReadEliminationPhase(self.program).run(graph)
        if self.program is not None:
            PartialEscapeAnalysisPhase(self.program).run(graph)
        CanonicalizerPhase().run(graph)
        canonical_cfg_cleanup(graph)
