"""The evaluation harness: runs suite × configuration and prints the
per-benchmark series plus geometric-mean tables of Figures 5–8.

For every workload and configuration the harness measures the three
paper metrics:

* **peak performance** — simulated cycles of the measured run (the
  harness reports the speedup over baseline; higher is better),
* **compile time** — wall-clock of the optimization pipeline (lower is
  better; reported as increase over baseline),
* **code size** — node-cost-model size of all compiled units (lower is
  better; reported as increase over baseline).

Each configuration recompiles from source so compilation is always from
the same starting IR (run-to-run isolation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..obs.tracer import Tracer
from ..pipeline.cache import ArtifactCache, cache_key, make_entry
from ..pipeline.compiler import compile_and_profile, measure_performance
from ..pipeline.config import BASELINE, CompilerConfig, DBDS, DUPALOT
from ..vm import translate_program
from .stats import format_percent, geometric_mean, speedup_percent
from .workloads.suites import SuiteProfile, Workload, generate_suite


@dataclass
class Measurement:
    """One (workload, configuration) cell.

    All wall-clock numbers come from ``time.perf_counter`` — the
    compiler's per-phase spans and the harness's own ``wall_time``
    alike — so they are directly comparable.  ``phase_times`` (phase
    name → inclusive seconds, summed over compilation units) is only
    populated when the suite ran with ``profile_phases=True``.
    """

    workload: str
    config: str
    cycles: float
    compile_time: float
    code_size: float
    duplications: int
    wall_time: float = 0.0
    phase_times: dict[str, float] = field(default_factory=dict)


@dataclass
class BenchmarkRow:
    """One workload across all configurations, normalized to baseline."""

    workload: str
    baseline: Measurement
    configs: dict[str, Measurement] = field(default_factory=dict)

    def speedup(self, config: str) -> float:
        return speedup_percent(self.baseline.cycles, self.configs[config].cycles)

    def compile_time_increase(self, config: str) -> float:
        if self.baseline.compile_time == 0:
            return 0.0
        return (self.configs[config].compile_time / self.baseline.compile_time - 1.0) * 100.0

    def code_size_increase(self, config: str) -> float:
        if self.baseline.code_size == 0:
            return 0.0
        return (self.configs[config].code_size / self.baseline.code_size - 1.0) * 100.0


@dataclass
class SuiteReport:
    """All rows of one suite plus the geomean summary."""

    suite: str
    rows: list[BenchmarkRow] = field(default_factory=list)
    config_names: list[str] = field(default_factory=list)

    def geomean_speedup(self, config: str) -> float:
        ratios = [
            self.baseline_ratio(row, config) for row in self.rows
        ]
        return (geometric_mean(ratios) - 1.0) * 100.0

    @staticmethod
    def baseline_ratio(row: BenchmarkRow, config: str) -> float:
        return max(row.baseline.cycles / max(row.configs[config].cycles, 1e-9), 1e-9)

    def geomean_compile_time(self, config: str) -> float:
        ratios = [
            max(row.configs[config].compile_time, 1e-9)
            / max(row.baseline.compile_time, 1e-9)
            for row in self.rows
        ]
        return (geometric_mean(ratios) - 1.0) * 100.0

    def geomean_code_size(self, config: str) -> float:
        ratios = [
            max(row.configs[config].code_size, 1e-9)
            / max(row.baseline.code_size, 1e-9)
            for row in self.rows
        ]
        return (geometric_mean(ratios) - 1.0) * 100.0


def measure_workload(
    workload: Workload,
    config: CompilerConfig,
    profile_phases: bool = False,
    cache: Optional[ArtifactCache] = None,
    engine: str = "reference",
) -> Measurement:
    """Compile under ``config`` and run the measured workload.

    ``profile_phases`` compiles under an event-recording tracer and
    fills ``Measurement.phase_times`` — it adds tracing overhead to the
    compile-time numbers (equally for every configuration), so it is
    off by default.

    With a ``cache``, compilation is served from the artifact cache
    when warm (the stored report keeps the original cold-compile
    timings, so normalized compile-time columns stay meaningful) and
    stored into it when cold.  Cached compiles always record their
    trace so the stored artifact carries its decision events, and the
    stored blob carries the VM bytecode so warm ``engine="vm"`` runs
    skip translation too.

    ``engine`` picks the executor for the measured run; both report
    identical cycles, so the choice only changes harness wall time.
    """
    wall_start = time.perf_counter()
    key = None
    cached = None
    bytecode = None
    if cache is not None:
        key = cache_key(
            workload.source, config,
            entry=workload.entry, profile_args=workload.profile_args,
        )
        cached = cache.get(key)
    if cached is not None:
        program, report = cached.program(), cached.report
        bytecode = cached.bytecode()
    else:
        tracer = Tracer() if (profile_phases or cache is not None) else None
        program, report = compile_and_profile(
            workload.source, workload.entry, workload.profile_args, config,
            tracer=tracer,
        )
        if engine == "vm":
            bytecode = translate_program(program)
        if cache is not None:
            cache.put(
                make_entry(
                    key, program, report,
                    events=tracer.events, counters=tracer.counters,
                    bytecode=bytecode or translate_program(program),
                )
            )
    cycles, results = measure_performance(
        program, workload.entry, workload.measure_args,
        engine=engine, bytecode=bytecode,
    )
    wall_time = time.perf_counter() - wall_start
    for result in results:
        if result.trapped:
            raise RuntimeError(
                f"{workload.suite}/{workload.name} trapped under "
                f"{config.name}: {result.trap}"
            )
    return Measurement(
        workload=workload.name,
        config=config.name,
        cycles=cycles,
        compile_time=report.total_compile_time,
        code_size=report.total_code_size,
        duplications=report.total_duplications,
        wall_time=wall_time,
        phase_times=report.total_phase_times(),
    )


def run_suite(
    profile: SuiteProfile,
    configs: Optional[Iterable[CompilerConfig]] = None,
    seed: int = 0,
    workloads: Optional[list[Workload]] = None,
    profile_phases: bool = False,
    cache: Optional[ArtifactCache] = None,
    engine: str = "reference",
) -> SuiteReport:
    """Measure a whole suite under baseline + the given configurations."""
    configs = list(configs) if configs is not None else [DBDS, DUPALOT]
    workloads = workloads if workloads is not None else generate_suite(profile, seed)
    report = SuiteReport(suite=profile.suite, config_names=[c.name for c in configs])
    for workload in workloads:
        baseline = measure_workload(workload, BASELINE, profile_phases, cache, engine)
        row = BenchmarkRow(workload=workload.name, baseline=baseline)
        for config in configs:
            row.configs[config.name] = measure_workload(
                workload, config, profile_phases, cache, engine
            )
        report.rows.append(row)
    return report


def format_suite_report(report: SuiteReport) -> str:
    """The Figure 5–8 presentation: per-benchmark rows, geomean table."""
    lines = [f"=== {report.suite} ==="]
    header = f"{'benchmark':<14s}" + "".join(
        f"{name + ' perf':>16s}{name + ' ctime':>16s}{name + ' size':>16s}"
        for name in report.config_names
    )
    lines.append(header)
    for row in report.rows:
        cells = ""
        for name in report.config_names:
            cells += (
                f"{format_percent(row.speedup(name)):>16s}"
                f"{format_percent(row.compile_time_increase(name)):>16s}"
                f"{format_percent(row.code_size_increase(name)):>16s}"
            )
        lines.append(f"{row.workload:<14s}{cells}")
    lines.append("-" * len(header))
    lines.append("Geometric mean (peak performance / compile time / code size):")
    for name in report.config_names:
        lines.append(
            f"  {name:<12s} {format_percent(report.geomean_speedup(name)):>9s} "
            f"{format_percent(report.geomean_compile_time(name)):>9s} "
            f"{format_percent(report.geomean_code_size(name)):>9s}"
        )
    breakdown = suite_phase_times(report)
    if any(breakdown.values()):
        lines.append("Compile-time breakdown by phase (inclusive ms, suite total):")
        phases = sorted(
            {p for per_config in breakdown.values() for p in per_config},
            key=lambda p: -max(bd.get(p, 0.0) for bd in breakdown.values()),
        )
        lines.append(
            f"  {'phase':<28s}"
            + "".join(f"{name:>14s}" for name in breakdown)
        )
        for phase in phases:
            lines.append(
                f"  {phase:<28s}"
                + "".join(
                    f"{breakdown[name].get(phase, 0.0) * 1e3:>14.2f}"
                    for name in breakdown
                )
            )
    return "\n".join(lines)


def suite_phase_times(report: SuiteReport) -> dict[str, dict[str, float]]:
    """Config name → (phase → seconds) summed over the suite's rows.

    Empty inner dicts when the suite ran without ``profile_phases``.
    """
    breakdown: dict[str, dict[str, float]] = {"baseline": {}}
    for row in report.rows:
        for phase, seconds in row.baseline.phase_times.items():
            breakdown["baseline"][phase] = (
                breakdown["baseline"].get(phase, 0.0) + seconds
            )
    for name in report.config_names:
        per_config = breakdown.setdefault(name, {})
        for row in report.rows:
            for phase, seconds in row.configs[name].phase_times.items():
                per_config[phase] = per_config.get(phase, 0.0) + seconds
    return breakdown


def suite_report_json(report: SuiteReport) -> dict[str, Any]:
    """Machine-readable suite report: per-benchmark measurements with
    per-phase compile-time breakdowns, plus the geomean summary —
    written by ``python -m repro bench --trace-out`` so future perf
    work can diff runs scriptably."""

    def measurement_json(m: Measurement) -> dict[str, Any]:
        return {
            "cycles": m.cycles,
            "compile_time": m.compile_time,
            "wall_time": m.wall_time,
            "code_size": m.code_size,
            "duplications": m.duplications,
            "phase_times": dict(m.phase_times),
        }

    return {
        "suite": report.suite,
        "configs": list(report.config_names),
        "rows": [
            {
                "workload": row.workload,
                "baseline": measurement_json(row.baseline),
                "configs": {
                    name: measurement_json(m) for name, m in row.configs.items()
                },
            }
            for row in report.rows
        ],
        "geomeans": {
            name: {
                "speedup_percent": report.geomean_speedup(name),
                "compile_time_percent": report.geomean_compile_time(name),
                "code_size_percent": report.geomean_code_size(name),
            }
            for name in report.config_names
        },
        "phase_times": suite_phase_times(report),
    }
