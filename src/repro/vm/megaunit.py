"""The megaunit engine: the whole call graph in one exec unit.

The fourth execution engine (``--engine=megaunit``).  The closure
engine compiles each function to per-block closures but still pays the
machine's full call protocol at every ``OP_CALL``: exit the
trampoline, re-enter ``vm._call`` / ``_run_frame``, allocate a
register file, build a fresh trampoline.  This backend removes all of
it by compiling the **entire program** into a single generated Python
module:

* every bytecode function becomes one Python function
  ``_mu<N>(vm, m, r0.., d)`` — its registers are **Python locals**
  seeded from the constant template, not a list;
* intra-function control flow is a threaded dispatch loop
  (``_L = <pc>`` + ``while True`` + an ``if/elif/else`` ladder over
  block-start labels, computed-goto style) — no per-block closure
  trampoline; a block with exactly one predecessor, reached only by a
  forward jump, is **inlined at that edge** instead of paying a
  dispatch round trip, and functions whose dispatch can never recur
  compile to straight-line code with no loop at all;
* ``OP_CALL`` lowers to a **direct Python call** of the callee's
  generated function — no ``_run_frame``, no register-file
  allocation through the machine, no trampoline re-entry.

Exactness mirrors :mod:`repro.vm.closure` (same segment accounting,
same trap flushes, same :func:`~repro.vm.closure._finish_budget`
prefix-replay for budget stops) with one twist: the step/cycle meter
``m`` is a single shared two-slot list threaded through every frame
of a run, so call sites do not flush ``vm.state`` at all — only trap
sites, budget stops and the run's entry/exit touch it.  Inside a
frame the meters live in the **locals** ``s``/``c`` (no list
subscripts on the hot path) and are written back to ``m`` exactly
where another frame or the machine observes them:

* a call site writes ``m[0] = s + 1`` / ``m[1] = c`` (the step
  charged, the machine's ordering), dispatches, then reloads
  ``s = m[0]`` / ``c = m[1] + cost``;
* ``_finish`` dispatches and returns write both slots back; trap
  sites flush ``state.steps = s + k`` / ``state.cycles = c + ck``
  directly;
* the callee prologue's stack-overflow guard flushes ``state`` from
  ``m`` before trapping — bit-identical to the machine, where the
  caller flushed before ``vm._call`` and the callee traps untouched;
* the engine's ``_run_frame`` builds ``m = [state.steps,
  state.cycles]`` once per machine entry and flushes back on normal
  return; every raising path flushed exactly at its raise site.

Compilation reads ``fn.code`` / ``fn.blocks`` / ``fn.template`` — the
base stream, which fusion and quickening never mutate — so fused
artifacts (``fn.xcode`` present) are consumable as compilation source
unchanged, and step/cycle totals agree with fused execution because
fusion preserves summed costs and step weights by construction.

Graceful degradation: nested MiniLang calls are now native Python
calls, so a worst-case-deep run could hit CPython's recursion limit
mid-frame — unrecoverable, since globals and heap effects are already
applied.  ``_run_frame`` therefore checks *up front* that the worst
case (``max_call_depth`` minus the current depth, plus
``_STACK_HEADROOM`` slack) fits under ``sys.getrecursionlimit()`` and
otherwise falls back to the inherited closure engine for the whole
activation, emitting a ``vm.fallback`` tracer event (once per machine
and reason) and counting ``repro_vm_fallback_total``.  Programs whose
functions lack block spans (legacy cache artifacts) fall back the
same way.  Hooked runs (profile collector or observer) delegate to
the base machine loops exactly as the closure engine does.

The generated module source is persisted in the artifact cache's aux
store (:mod:`repro.vm.codegen_cache`) so warm runs skip codegen, and
is statically verified by the extended ``bc-codegen-lint``
(:func:`repro.analysis.bcverify.lint_megaunit_source`).
"""

from __future__ import annotations

import sys
from typing import Any, Optional

from ..obs.metrics import current_registry
from ..obs.tracer import current_tracer
from .bytecode import (
    OP_CALL,
    OP_GOTO,
    OP_IF,
    OP_RETURN,
    BytecodeFunction,
    BytecodeProgram,
)
from .closure import (
    ClosureVirtualMachine,
    _finish_budget,
    _FunctionCompiler,
)
from .machine import HeapArray, HeapObject, VirtualMachine, _is_ref
from ..ir.ops import EvaluationTrap

#: Python stack frames kept in reserve when deciding whether a run can
#: execute natively: interpreter entry frames, the trap/return path,
#: and anything the harness has on the stack above us.
_STACK_HEADROOM = 64

#: every fixed global name the generated module may reference
#: (per-function cells ``_mu<N>`` / ``_fn<N>`` / ``_tmpl<N>`` are
#: added per program and matched by pattern in the lint)
MEGAUNIT_NAMESPACE = frozenset(
    ("EvaluationTrap", "HeapObject", "HeapArray", "_is_ref", "_finish")
)

#: the only builtins generated code is allowed to reach (same set as
#: the closure engine — the instruction bodies are shared)
MEGAUNIT_BUILTINS = frozenset(("abs", "len", "dict"))


class MegaunitUnsupported(Exception):
    """This program cannot be megaunit-compiled (e.g. a function with
    no block spans); the engine falls back to the closure engine."""


def stack_headroom_ok(call_depth: int, max_call_depth: int) -> bool:
    """Can the *worst case* remaining MiniLang depth run as native
    Python calls?  Conservative by design: uses ``max_call_depth``, not
    the depth the program will actually reach, because a megaunit frame
    that hits CPython's recursion limit mid-run cannot be replayed
    (heap and global effects are already applied)."""
    remaining = max_call_depth - call_depth + 1
    depth = 0
    frame = sys._getframe()
    while frame is not None:
        depth += 1
        frame = frame.f_back
    return depth + remaining + _STACK_HEADROOM < sys.getrecursionlimit()


# ----------------------------------------------------------------------
# Source generation
# ----------------------------------------------------------------------
class _MegaFunctionCompiler(_FunctionCompiler):
    """Generates one ``_mu<N>`` function of the whole-program module.

    Inherits every instruction body, the segment accounting and the
    trap-flush discipline from the closure compiler; overrides how
    registers are named (locals), how edges transfer control (label
    assignment + ``continue``) and how calls dispatch (direct)."""

    #: inline chains longer than this fall back to label dispatch so
    #: generated nesting stays far from CPython's indentation limit
    _MAX_INLINE_CHAIN = 24

    def __init__(
        self,
        fn: BytecodeFunction,
        metered: bool,
        max_steps: int,
        max_call_depth: int,
        index: int,
        entries: dict[int, str],
    ) -> None:
        super().__init__(fn, metered, max_steps, max_call_depth)
        self.index = index
        self.entries = entries
        self._inline: set[int] = set()
        self._spans: dict[int, int] = {}

    # -- the overridden naming hooks ------------------------------------
    def reg(self, reg: int) -> str:
        return f"r{reg}"

    def fn_ref(self) -> str:
        return f"_fn{self.index}"

    def finish_regs(self) -> str:
        # _finish replays through the base handler table, which needs a
        # mutable register file; it always raises, so the temporary
        # list's mutations are never observed.
        return "[" + ", ".join(self.reg(k) for k in range(self.fn.nregs)) + "]"

    # -- meter locals -----------------------------------------------------
    # Steps and cycles live in the locals ``s``/``c`` (no ``m[0]`` /
    # ``m[1]`` subscripts on the hot path) and are written back to the
    # shared list exactly where another frame or the machine observes
    # them: call sites, returns, ``_finish`` dispatches and trap raises.
    def meter_guard(self, indent: int, w: int, pc: int) -> None:
        self.emit(indent, f"if s + {w} > {self.max_steps}:")
        self.emit(indent + 1, "m[0] = s")
        self.emit(indent + 1, "m[1] = c")
        self.emit(
            indent + 1,
            f"_finish(vm, {self.fn_ref()}, {self.finish_regs()}, m, {pc})",
        )

    def meter_charge(self, indent: int, w: int, acc) -> None:
        self.emit(indent, f"s += {w}")
        if self.metered and acc:
            self.emit(indent, f"c += {acc!r}")

    def flush(self, indent: int, k: int, ck) -> None:
        self.emit(indent, f"state.steps = s + {k}")
        if self.metered:
            if ck:
                self.emit(indent, f"state.cycles = c + {ck!r}")
            else:
                self.emit(indent, "state.cycles = c")

    # -- control transfer -----------------------------------------------
    def block_edges(self, start: int, count: int) -> tuple:
        """The terminator's edge descriptors for the block at ``start``."""
        term = self.fn.code[start + count - 1]
        if term[0] == OP_GOTO:
            return (term[4],)
        if term[0] == OP_IF:
            return (term[5], term[6])
        return ()

    def plan_inlining(self) -> tuple[set, list]:
        """Blocks to inline at their unique predecessor edge.

        A non-entry block with exactly one incoming edge, reached only
        by a forward jump, is generated in place of that edge's
        ``_L = <pc>`` / ``continue`` round trip and omitted from the
        dispatch ladder.  Forward-only keeps the recursion finite
        (inline targets have strictly increasing pcs); chains are
        capped so nesting stays shallow.  Returns the inline set and
        the entry block's predecessor list (used to decide whether the
        dispatch loop is needed at all)."""
        preds: dict[int, list[int]] = {
            start: [] for start, _count, _name in self.fn.blocks
        }
        for start, count, _name in self.fn.blocks:
            for edge in self.block_edges(start, count):
                if edge[0] in preds:
                    preds[edge[0]].append(start)
        inline = {
            target
            for target, sources in preds.items()
            if target != 0 and len(sources) == 1 and sources[0] < target
        }
        chain: dict[int, int] = {}
        for start, _count, _name in self.fn.blocks:  # ascending pc
            if start not in inline:
                continue
            chain[start] = chain.get(preds[start][0], 0) + 1
            if chain[start] > self._MAX_INLINE_CHAIN:
                inline.discard(start)
                chain[start] = 0
        return inline, preds.get(0, [])

    def gen_edge(self, indent: int, edge: tuple) -> None:
        for d, src in edge[1]:
            self.emit(indent, f"{self.reg(d)} = {self.reg(src)}")
        target = edge[0]
        if target in self._inline:
            self.gen_body(indent, target, self._spans[target])
        else:
            self.emit(indent, f"_L = {target}")
            self.emit(indent, "continue")

    def gen_terminator(self, indent: int, ins: tuple) -> None:
        if ins[0] == OP_RETURN:
            value = self.operand(ins[4]) if ins[4] >= 0 else "None"
            self.emit(indent, "m[0] = s")
            self.emit(indent, "m[1] = c")
            self.emit(indent, f"return {value}")
        else:
            super().gen_terminator(indent, ins)

    # -- direct call lowering -------------------------------------------
    def gen_call(self, indent: int, ins: tuple, pc: int) -> None:
        """One call site: budget guard, write the meters back (the step
        charged, so the callee observes the machine's ordering),
        dispatch the callee's generated function directly, reload and
        charge the call cost."""
        target = self.entries.get(id(ins[4]))
        if target is None:  # pragma: no cover - translate interns callees
            raise MegaunitUnsupported(
                f"{self.fn.name}: call target {ins[4]!r} is not part of "
                "the compiled program"
            )
        emit = self.emit
        emit(indent, f"if s + 1 > {self.max_steps}:")
        emit(indent + 1, "m[0] = s")
        emit(indent + 1, "m[1] = c")
        emit(
            indent + 1,
            f"_finish(vm, {self.fn_ref()}, {self.finish_regs()}, m, {pc})",
        )
        emit(indent, "m[0] = s + 1")
        emit(indent, "m[1] = c")
        args = "".join(f", {self.reg(a)}" for a in ins[5])
        emit(indent, f"{self.reg(ins[3])} = {target}(vm, m{args}, d + 1)")
        emit(indent, "s = m[0]")
        if self.metered and ins[1]:
            emit(indent, f"c = m[1] + {ins[1]!r}")
        else:
            emit(indent, "c = m[1]")

    # -- function scaffolding -------------------------------------------
    def gen_seed(self) -> None:
        """Seed every non-parameter register from the constant template.

        All registers must exist as locals before the first budget
        guard (``_finish`` materializes the full register file), so
        every slot is seeded eagerly.  Literal-representable values
        (the ``operand`` rule: ``None``/``int``/``bool``) are grouped
        by repr into chained assignments; anything else loads from the
        function's template cell."""
        fn = self.fn
        groups: dict[str, list[int]] = {}
        for k in range(fn.nparams, fn.nregs):
            value = fn.template[k]
            if value is None or type(value) in (int, bool):
                groups.setdefault(repr(value), []).append(k)
            else:
                self.emit(1, f"{self.reg(k)} = _tmpl{self.index}[{k}]")
        for literal, regs in groups.items():
            for chunk in range(0, len(regs), 12):
                targets = " = ".join(
                    self.reg(k) for k in regs[chunk:chunk + 12]
                )
                self.emit(1, f"{targets} = {literal}")

    def gen_body(self, indent: int, start: int, count: int) -> None:
        """One block's body: maximal call-free segments + call sites
        (the closure compiler's ``gen_block`` without the ``def``)."""
        code = self.fn.code
        pc = start
        end = start + count
        while pc < end:
            if code[pc][0] == OP_CALL:
                self.gen_call(indent, code[pc], pc)
                pc += 1
                continue
            seg_end = pc
            while seg_end < end and code[seg_end][0] != OP_CALL:
                seg_end += 1
            self.gen_segment(indent, pc, seg_end)
            pc = seg_end

    def gen_function(self) -> None:
        fn = self.fn
        emit = self.emit
        blocks = fn.blocks
        if not blocks or blocks[0][0] != 0:
            raise MegaunitUnsupported(f"{fn.name}: no usable block spans")
        for start, count, _name in blocks:
            if fn.code[start + count - 1][0] not in (OP_GOTO, OP_IF, OP_RETURN):
                raise MegaunitUnsupported(
                    f"{fn.name}: block at pc {start} has no terminator"
                )
        self._inline, entry_preds = self.plan_inlining()
        self._spans = {start: count for start, count, _name in blocks}
        params = "".join(f", r{k}" for k in range(fn.nparams))
        emit(0, f"def _mu{self.index}(vm, m{params}, d):")
        emit(1, "state = vm.state")
        emit(1, f"if d > {self.max_call_depth}:")
        emit(2, "state.steps = m[0]")
        emit(2, "state.cycles = m[1]")
        emit(2, "raise EvaluationTrap('stack overflow')")
        emit(1, "s = m[0]")
        emit(1, "c = m[1]")
        self.gen_seed()
        ladder = [
            (start, count)
            for start, count, _name in blocks
            if start not in self._inline
        ]
        if len(ladder) == 1 and not entry_preds:
            # Control can never reach a label twice: every other block
            # is inlined at its unique predecessor edge and nothing
            # jumps back to the entry, so no `continue` is ever emitted
            # — skip the dispatch loop entirely.
            self.gen_body(1, ladder[0][0], ladder[0][1])
            return
        emit(1, "_L = 0")
        emit(1, "while True:")
        for idx, (start, count) in enumerate(ladder):
            if idx == 0:
                emit(2, f"if _L == {start}:")
            elif idx == len(ladder) - 1:
                emit(2, "else:")
            else:
                emit(2, f"elif _L == {start}:")
            self.gen_body(3, start, count)

    def source(self) -> str:
        self.gen_function()
        return "\n".join(self.lines) + "\n"


def generate_module_source(
    bytecode: BytecodeProgram,
    metered: bool = True,
    max_steps: int = 50_000_000,
    max_call_depth: int = 200,
) -> str:
    """The whole-program Python source ``compile_module`` would exec,
    without executing it — the static codegen lint works on this text.
    Raises :class:`MegaunitUnsupported` when the program cannot be
    megaunit-compiled."""
    order = list(bytecode.functions.values())
    entries = {id(fn): f"_mu{i}" for i, fn in enumerate(order)}
    parts = []
    for i, fn in enumerate(order):
        parts.append(
            _MegaFunctionCompiler(
                fn, metered, max_steps, max_call_depth, i, entries
            ).source()
        )
    return "\n".join(parts)


class MegaunitModule:
    """One compiled whole-program unit: the source, the per-function
    entry points, and the function-name order the indices follow."""

    __slots__ = ("source", "entries", "order")

    def __init__(
        self, source: str, entries: dict[str, Any], order: list[str]
    ) -> None:
        self.source = source
        self.entries = entries
        self.order = order


def _exec_module(
    bytecode: BytecodeProgram, order: list[BytecodeFunction], source: str
) -> MegaunitModule:
    namespace: dict[str, Any] = {
        "EvaluationTrap": EvaluationTrap,
        "HeapObject": HeapObject,
        "HeapArray": HeapArray,
        "_is_ref": _is_ref,
        "_finish": _finish_budget,
    }
    for i, fn in enumerate(order):
        namespace[f"_fn{i}"] = fn
        namespace[f"_tmpl{i}"] = fn.template
    exec(  # noqa: S102 - the source is generated from trusted IR
        compile(source, "<megaunit>", "exec"),
        namespace,
    )
    entries = {fn.name: namespace[f"_mu{i}"] for i, fn in enumerate(order)}
    return MegaunitModule(source, entries, [fn.name for fn in order])


def compile_module(
    bytecode: BytecodeProgram,
    metered: bool,
    max_steps: int,
    max_call_depth: int,
    codegen_cache: Optional[Any] = None,
) -> Optional[MegaunitModule]:
    """Compile (or exec from cache) the whole-program unit, or ``None``
    when the program cannot be megaunit-compiled."""
    order = list(bytecode.functions.values())
    if codegen_cache is not None:
        from .codegen_cache import codegen_key, load_source, store_source

        key = codegen_key(
            "megaunit", order, metered, max_steps, max_call_depth
        )
        payload = load_source(codegen_cache, key, "megaunit")
        if (
            payload is not None
            and payload.get("functions") == [fn.name for fn in order]
        ):
            return _exec_module(bytecode, order, payload["source"])
    try:
        source = generate_module_source(
            bytecode, metered, max_steps, max_call_depth
        )
    except MegaunitUnsupported:
        return None
    module = _exec_module(bytecode, order, source)
    if codegen_cache is not None:
        store_source(
            codegen_cache, key,
            {
                "engine": "megaunit",
                "functions": module.order,
                "source": source,
            },
        )
    return module


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class MegaunitVirtualMachine(ClosureVirtualMachine):
    """A :class:`VirtualMachine` whose runs execute one whole-program
    exec unit.  Drop-in: same constructor, ``run``/``reset``/``state``
    API and observable semantics as every other engine.  The module
    compiles lazily on the first frame and is cached per
    ``(max_steps, metered)``; insufficient recursion headroom or
    missing block spans fall back to the inherited closure engine (a
    ``vm.fallback`` event records why)."""

    def __init__(
        self,
        bytecode: BytecodeProgram,
        codegen_cache: Optional[Any] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(bytecode, codegen_cache=codegen_cache, **kwargs)
        self._mu_module: Optional[MegaunitModule] = None
        self._mu_ready = False
        self._mu_compiled_for = (self.max_steps, self.metered)
        self._mu_fallbacks_noted: set = set()

    def _module(self) -> Optional[MegaunitModule]:
        key = (self.max_steps, self.metered)
        if key != self._mu_compiled_for:
            self._mu_module = None
            self._mu_ready = False
            self._mu_compiled_for = key
        if not self._mu_ready:
            self._mu_ready = True
            self._mu_module = compile_module(
                self.bytecode, self.metered, self.max_steps,
                self.max_call_depth, codegen_cache=self.codegen_cache,
            )
        return self._mu_module

    def _stack_headroom_ok(self) -> bool:
        return stack_headroom_ok(self._call_depth, self.max_call_depth)

    def _note_fallback(self, reason: str) -> None:
        if self._call_depth > 1 or reason in self._mu_fallbacks_noted:
            return
        self._mu_fallbacks_noted.add(reason)
        current_tracer().event(
            "vm.fallback", engine="megaunit", fallback="closure",
            reason=reason,
        )
        registry = current_registry()
        if registry.enabled:
            registry.inc(
                "repro_vm_fallback_total", engine="megaunit", reason=reason
            )

    def _run_frame(self, fn: BytecodeFunction, args: list) -> Any:
        if self.profile is not None or self.observer is not None:
            # Hooked runs: identical hook semantics to the base machine.
            return VirtualMachine._run_frame(self, fn, args)
        module = self._module()
        if module is None:
            self._note_fallback("no-block-spans")
            return ClosureVirtualMachine._run_frame(self, fn, args)
        entry = module.entries.get(fn.name)
        if entry is None:  # pragma: no cover - run() resolves names first
            self._note_fallback("unknown-function")
            return ClosureVirtualMachine._run_frame(self, fn, args)
        if not self._stack_headroom_ok():
            self._note_fallback("recursion-headroom")
            return ClosureVirtualMachine._run_frame(self, fn, args)
        state = self.state
        m = [state.steps, state.cycles]
        # Raising paths (traps, budget stops, the callee depth guard)
        # flush state at their raise site; only the normal return path
        # flushes here.
        value = entry(self, m, *args, self._call_depth)
        state.steps = m[0]
        state.cycles = m[1]
        return value


__all__ = [
    "MEGAUNIT_BUILTINS",
    "MEGAUNIT_NAMESPACE",
    "MegaunitModule",
    "MegaunitUnsupported",
    "MegaunitVirtualMachine",
    "compile_module",
    "generate_module_source",
    "stack_headroom_ok",
]
