"""Tests for the DBDS simulation tier, including the paper's Figure 3."""

import pytest

from repro.dbds.simulation import SimulationResult, SimulationTier
from repro.frontend.irbuilder import compile_source
from repro.interp.profile import apply_profile, profile_program
from repro.ir import (
    ArithOp,
    BinOp,
    CmpOp,
    Compare,
    Goto,
    Graph,
    If,
    INT,
    Phi,
    Return,
    verify_graph,
)
from repro.ir.stamps import INT_MAX, IntStamp
from tests.helpers import build_diamond


def build_figure3(non_negative_x: bool = True):
    """Program *f* from Figure 3: ``return x / phi(a, 2)``.

    With ``x`` known non-negative the division by 2 strength-reduces to
    a single shift — the paper's worked example: CS = 32 − 1 = 31.
    """
    g = Graph("f", [("a", INT), ("b", INT), ("x", INT)], INT)
    a, b, x = g.parameters
    if non_negative_x:
        x.stamp = IntStamp(0, INT_MAX)
    bp1, bp2, bm = g.new_block("bp1"), g.new_block("bp2"), g.new_block("bm")
    cond = g.entry.append(Compare(CmpOp.GT, a, b))
    g.entry.set_terminator(If(cond, bp1, bp2))
    bp1.set_terminator(Goto(bm))
    bp2.set_terminator(Goto(bm))
    phi = Phi(bm, INT, [a, g.const_int(2)])
    bm.add_phi(phi)
    div = bm.append(ArithOp(BinOp.DIV, x, phi))
    bm.set_terminator(Return(div))
    verify_graph(g)
    return g, bp1, bp2, bm


class TestFigure3:
    def test_figure3_cycles_saved(self):
        """The headline example: simulating the duplication of bm into
        bp2 discovers the Div→Shift opportunity worth 31 cycles."""
        g, bp1, bp2, bm = build_figure3()
        results = SimulationTier(g).run()
        by_pred = {r.pred: r for r in results}
        assert by_pred[bp2].benefit == pytest.approx(31.0)
        assert "strength-reduce-div" in by_pred[bp2].reasons

    def test_other_predecessor_has_no_benefit(self):
        g, bp1, bp2, bm = build_figure3()
        results = SimulationTier(g).run()
        by_pred = {r.pred: r for r in results}
        assert by_pred[bp1].benefit == pytest.approx(0.0)

    def test_signed_x_still_profits_less(self):
        g, bp1, bp2, bm = build_figure3(non_negative_x=False)
        results = SimulationTier(g).run()
        by_pred = {r.pred: r for r in results}
        # The signed fix-up sequence costs 4 cycles instead of 1.
        assert 0 < by_pred[bp2].benefit < 31.0

    def test_simulation_does_not_mutate_ir(self):
        g, bp1, bp2, bm = build_figure3()
        before = g.describe()
        SimulationTier(g).run()
        assert g.describe() == before
        verify_graph(g)

    def test_use_lists_unpolluted(self):
        """Action-step subgraphs register uses while being built; the
        simulator must release them all."""
        g, bp1, bp2, bm = build_figure3()
        x = g.parameters[2]
        users_before = dict(x.uses)
        SimulationTier(g).run()
        assert dict(x.uses) == users_before


class TestFigure1:
    def test_constant_fold_candidate_found(self, diamond):
        results = SimulationTier(diamond["graph"]).run()
        by_pred = {r.pred: r for r in results}
        false_result = by_pred[diamond["false_block"]]
        # Add(2, phi→0) folds: 1 cycle saved.
        assert false_result.benefit == pytest.approx(1.0)
        assert "constant-fold" in false_result.reasons
        assert by_pred[diamond["true_block"]].benefit == 0.0

    def test_cost_reflects_duplicated_size(self, diamond):
        results = SimulationTier(diamond["graph"]).run()
        for r in results:
            # Copying Add + Return costs size 2 minus any savings.
            assert 0 <= r.cost <= 2.0

    def test_probability_comes_from_frequencies(self):
        parts = build_diamond(true_prob=0.9)
        results = SimulationTier(parts["graph"]).run()
        by_pred = {r.pred: r for r in results}
        assert by_pred[parts["true_block"]].probability == pytest.approx(0.9)
        assert by_pred[parts["false_block"]].probability == pytest.approx(0.1)


class TestConditionalEliminationDetection:
    def test_listing1_ce_benefit(self):
        program = compile_source(
            """
fn f(i: int) -> int {
  var p: int;
  if (i > 0) { p = i; } else { p = 13; }
  if (p > 12) { return 12; }
  return i;
}
"""
        )
        graph = program.function("f")
        tier = SimulationTier(graph, program)
        results = tier.run()
        # On the else path p = 13 > 12 is decided: CE fires.
        ce = [r for r in results if "conditional-elimination" in r.reasons]
        assert len(ce) == 1
        assert ce[0].benefit > 0

    def test_dominating_fact_used_in_dst(self):
        """A condition on the path to the predecessor must decide a
        compare inside the merge (the 'narrowing' of Section 4.1)."""
        program = compile_source(
            """
fn f(x: int) -> int {
  var p: int;
  if (x > 100) { p = x; } else { p = 0; }
  if (p > 50) { return 1; }
  return 0;
}
"""
        )
        graph = program.function("f")
        results = SimulationTier(graph, program).run()
        # true pred: p = x with x > 100 known -> p > 50 decided true.
        # false pred: p = 0 -> decided false. Both are CE hits.
        ce = [r for r in results if "conditional-elimination" in r.reasons]
        assert len(ce) == 2


class TestReadEliminationDetection:
    def test_listing5_read_benefit(self):
        program = compile_source(
            """
class A { x: int; }
global s: int;
fn f(a: A, i: int) -> int {
  if (i > 0) { s = a.x; } else { s = 0; }
  return a.x;
}
"""
        )
        graph = program.function("f")
        results = SimulationTier(graph, program).run()
        by_reason = [r for r in results if "read-elimination" in r.reasons]
        # Only the true predecessor already read a.x.
        assert len(by_reason) == 1
        assert by_reason[0].benefit == pytest.approx(2.0)  # LoadField cycles


class TestPeaDetection:
    def test_listing3_allocation_benefit(self):
        program = compile_source(
            """
class A { x: int; }
fn f(a: A) -> int {
  var p: A;
  if (a == null) { p = new A { x = 0 }; } else { p = a; }
  return p.x;
}
"""
        )
        graph = program.function("f")
        results = SimulationTier(graph, program).run()
        pea = [r for r in results if "partial-escape-analysis" in r.reasons]
        assert len(pea) == 1
        # Saves at least the allocation (8 cycles).
        assert pea[0].benefit >= 8.0


class TestCandidateSpace:
    def test_loop_headers_skipped(self):
        program = compile_source(
            """
fn f(n: int) -> int {
  var s: int = 0; var i: int = 0;
  while (i < n) { s = s + i; i = i + 1; }
  return s;
}
"""
        )
        graph = program.function("f")
        results = SimulationTier(graph, program).run()
        from repro.ir.loops import LoopForest

        headers = {l.header for l in LoopForest(graph).loops}
        assert all(r.merge not in headers for r in results)

    def test_all_pairs_simulated(self, diamond):
        results = SimulationTier(diamond["graph"]).run()
        assert len(results) == 2

    def test_weighted_benefit(self):
        r = SimulationResult(None, None, benefit=10.0, cost=1.0, probability=0.25)
        assert r.weighted_benefit == pytest.approx(2.5)
