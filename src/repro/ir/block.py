"""Basic blocks with ordered predecessors and phi bookkeeping.

Structural invariants (checked by :mod:`repro.ir.verifier`):

* Ordered predecessor lists; phi inputs are positional per predecessor.
* Every predecessor of a *merge* block (>= 2 predecessors) ends in a
  :class:`~repro.ir.nodes.Goto` — critical edges are always split, which
  makes tail duplication a well-defined "append to predecessor" step.
* ``If`` terminators have two distinct targets (folded to Goto
  otherwise), so an edge is uniquely identified by ``(pred, succ)``.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .nodes import Goto, Instruction, Phi, Terminator


class Block:
    """A basic block: phis, a straight-line instruction list, a terminator."""

    def __init__(self, graph, name: Optional[str] = None) -> None:
        self.graph = graph
        self.id: int = graph._next_block_id()
        self._name = name
        self.phis: list[Phi] = []
        self.instructions: list[Instruction] = []
        self.terminator: Optional[Terminator] = None
        self.predecessors: list["Block"] = []

    # ------------------------------------------------------------------
    # Naming / display
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name or f"b{self.id}"

    def __repr__(self) -> str:
        return self.name

    # ------------------------------------------------------------------
    # Successor / predecessor structure
    # ------------------------------------------------------------------
    @property
    def successors(self) -> tuple["Block", ...]:
        return self.terminator.targets if self.terminator else ()

    def is_merge(self) -> bool:
        return len(self.predecessors) >= 2

    def add_predecessor(self, pred: "Block") -> None:
        """Register an incoming edge. Phi inputs for the new edge must be
        appended by the caller via :meth:`Phi._append_input` helpers —
        the verifier enforces consistency."""
        self.predecessors.append(pred)
        self.graph.invalidate_analyses()

    def remove_predecessor(self, pred: "Block") -> int:
        """Unregister the (unique) edge from ``pred`` and drop the
        corresponding phi input from every phi. Returns the removed
        predecessor index."""
        index = self.predecessor_index(pred)
        del self.predecessors[index]
        for phi in self.phis:
            phi._remove_input_at(index)
        self.graph.invalidate_analyses()
        return index

    def predecessor_index(self, pred: "Block") -> int:
        for i, p in enumerate(self.predecessors):
            if p is pred:
                return i
        raise ValueError(f"{pred.name} is not a predecessor of {self.name}")

    # ------------------------------------------------------------------
    # Instruction management
    # ------------------------------------------------------------------
    def append(self, instruction: Instruction) -> Instruction:
        """Append a (non-phi) instruction to the end of the block."""
        assert not isinstance(instruction, Phi)
        instruction.block = self
        self.instructions.append(instruction)
        return instruction

    def insert(self, index: int, instruction: Instruction) -> Instruction:
        assert not isinstance(instruction, Phi)
        instruction.block = self
        self.instructions.insert(index, instruction)
        return instruction

    def add_phi(self, phi: Phi) -> Phi:
        assert phi.block is self
        self.phis.append(phi)
        return phi

    def remove_instruction(self, instruction: Instruction) -> None:
        """Remove an instruction (or phi) and release its operand uses.

        The instruction must be use-free (callers ``replace_all_uses``
        first); this is asserted to catch dangling references early.
        """
        assert not instruction.has_uses(), (
            f"removing {instruction!r} which still has uses"
        )
        if isinstance(instruction, Phi):
            self.phis.remove(instruction)
        else:
            self.instructions.remove(instruction)
        instruction.drop_inputs()
        instruction.block = None

    def set_terminator(self, terminator: Terminator) -> Terminator:
        """Install ``terminator``, maintaining successor predecessor lists."""
        if self.terminator is not None:
            for t in self.terminator.targets:
                t.remove_predecessor(self)
            self.terminator.drop_inputs()
            self.terminator.block = None
        self.terminator = terminator
        terminator.block = self
        for t in terminator.targets:
            t.add_predecessor(self)
        return terminator

    def clear_terminator(self) -> None:
        """Detach the terminator (used while deleting the block)."""
        if self.terminator is not None:
            for t in self.terminator.targets:
                t.remove_predecessor(self)
            self.terminator.drop_inputs()
            self.terminator.block = None
            self.terminator = None

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------
    def all_instructions(self) -> Iterator[Instruction]:
        """Phis first, then scheduled instructions (no terminator)."""
        yield from self.phis
        yield from self.instructions

    def ends_with_goto(self) -> bool:
        return isinstance(self.terminator, Goto)

    def describe(self) -> str:
        lines = [f"{self.name}:  preds={[p.name for p in self.predecessors]}"]
        for phi in self.phis:
            lines.append(f"  {phi.describe()}")
        for ins in self.instructions:
            lines.append(f"  {ins.describe()}")
        if self.terminator is not None:
            lines.append(f"  {self.terminator.describe()}")
        return "\n".join(lines)
