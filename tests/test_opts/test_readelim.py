"""Tests for read elimination."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import HeapObject, Interpreter
from repro.ir import LoadField, LoadGlobal, ArrayLoad, verify_graph
from repro.opts.readelim import MemoryCache, ReadEliminationPhase, may_alias


def count_loads(graph, kind=LoadField):
    return sum(
        1 for b in graph.blocks for i in b.instructions if isinstance(i, kind)
    )


def run_phase(source: str, name: str = "f"):
    program = compile_source(source)
    graph = program.function(name)
    eliminated = ReadEliminationPhase(program).run(graph)
    verify_graph(graph)
    return program, graph, eliminated


class TestMayAlias:
    def test_identity_aliases(self):
        from repro.ir import Graph, INT, New, ObjectType

        alloc = New(ObjectType("A"))
        assert may_alias(alloc, alloc)

    def test_distinct_allocations_do_not_alias(self):
        from repro.ir import New, ObjectType

        a, b = New(ObjectType("A")), New(ObjectType("A"))
        assert not may_alias(a, b)

    def test_parameter_may_alias_parameter(self):
        from repro.ir import Graph, INT, ObjectType

        g = Graph("f", [("a", ObjectType("A")), ("b", ObjectType("A"))], INT)
        assert may_alias(g.parameters[0], g.parameters[1])


class TestFieldLoads:
    def test_repeated_load_eliminated(self):
        _, graph, eliminated = run_phase(
            "class A { x: int; }\nfn f(a: A) -> int { return a.x + a.x; }"
        )
        assert eliminated == 1
        assert count_loads(graph) == 1

    def test_store_to_load_forwarding(self):
        program, graph, eliminated = run_phase(
            "class A { x: int; }\nfn f(a: A, v: int) -> int { a.x = v; return a.x; }"
        )
        assert eliminated == 1
        assert count_loads(graph) == 0
        obj = HeapObject("A", {"x": 0})
        assert Interpreter(program).run("f", [obj, 42]).value == 42
        assert obj.fields["x"] == 42  # store still happens

    def test_aliasing_store_invalidates(self):
        _, graph, eliminated = run_phase(
            """
class A { x: int; }
fn f(a: A, b: A, v: int) -> int {
  var first: int = a.x;
  b.x = v;
  return first + a.x;
}
"""
        )
        # b may alias a: the second a.x load must survive.
        assert eliminated == 0
        assert count_loads(graph) == 2

    def test_different_field_does_not_invalidate(self):
        _, graph, eliminated = run_phase(
            """
class A { x: int; y: int; }
fn f(a: A, b: A, v: int) -> int {
  var first: int = a.x;
  b.y = v;
  return first + a.x;
}
"""
        )
        assert eliminated == 1

    def test_store_to_fresh_object_does_not_invalidate(self):
        _, graph, eliminated = run_phase(
            """
class A { x: int; }
fn f(a: A) -> int {
  var first: int = a.x;
  var fresh: A = new A { x = 1 };
  return first + a.x + fresh.x;
}
"""
        )
        # The allocation's store cannot alias a's field; both the second
        # a.x and fresh.x (forwarded default/init) are removable.
        assert eliminated == 2

    def test_call_invalidates_everything(self):
        _, graph, eliminated = run_phase(
            """
class A { x: int; }
fn g(a: A) { a.x = 5; }
fn f(a: A) -> int {
  var first: int = a.x;
  g(a);
  return first + a.x;
}
"""
        )
        assert eliminated == 0

    def test_new_object_default_forwarded(self):
        program, graph, eliminated = run_phase(
            "class A { x: int; }\nfn f() -> int { var a: A = new A; return a.x; }"
        )
        assert eliminated == 1
        assert Interpreter(program).run("f", []).value == 0


class TestGlobals:
    def test_repeated_global_load(self):
        _, graph, eliminated = run_phase(
            "global g: int;\nfn f() -> int { return g + g; }"
        )
        assert eliminated == 1
        assert count_loads(graph, LoadGlobal) == 1

    def test_global_store_forwarding(self):
        _, graph, eliminated = run_phase(
            "global g: int;\nfn f(v: int) -> int { g = v; return g; }"
        )
        assert eliminated == 1
        assert count_loads(graph, LoadGlobal) == 0

    def test_distinct_globals_independent(self):
        _, graph, eliminated = run_phase(
            "global g: int;\nglobal h: int;\nfn f(v: int) -> int { g = v; h = v; return g + h; }"
        )
        assert eliminated == 2


class TestArrays:
    def test_same_index_load_eliminated(self):
        _, graph, eliminated = run_phase(
            "fn f(xs: int[], i: int) -> int { return xs[i] + xs[i]; }"
        )
        assert eliminated == 1
        assert count_loads(graph, ArrayLoad) == 1

    def test_store_with_unknown_index_invalidates(self):
        _, graph, eliminated = run_phase(
            """
fn f(xs: int[], i: int, j: int, v: int) -> int {
  var first: int = xs[i];
  xs[j] = v;
  return first + xs[i];
}
"""
        )
        assert eliminated == 0

    def test_array_store_forwarding_same_index(self):
        program, graph, eliminated = run_phase(
            "fn f(xs: int[], i: int, v: int) -> int { xs[i] = v; return xs[i]; }"
        )
        assert eliminated == 1


class TestMergeBoundaries:
    def test_partially_redundant_read_not_eliminated(self):
        """Listing 5: Read2 is only partially redundant — read
        elimination alone must NOT remove it (duplication promotes it)."""
        _, graph, eliminated = run_phase(
            """
class A { x: int; }
global s: int;
fn f(a: A, i: int) -> int {
  if (i > 0) { s = a.x; } else { s = 0; }
  return a.x;
}
"""
        )
        assert eliminated == 0
        assert count_loads(graph) == 2

    def test_straightline_across_blocks_eliminated(self):
        _, graph, eliminated = run_phase(
            """
class A { x: int; }
fn f(a: A, i: int) -> int {
  var first: int = a.x;
  if (i > 0) { return first + a.x; }
  return first;
}
"""
        )
        # The branch target has a single predecessor: state flows.
        assert eliminated == 1

    def test_semantics_preserved(self):
        source = """
class A { x: int; y: int; }
global s: int;
fn f(a: A, b: A, i: int) -> int {
  var t: int = a.x;
  b.x = i;
  s = a.y;
  if (i > 0) { t = t + a.x; }
  return t + a.y + s;
}
"""
        program = compile_source(source)
        def run_all(p):
            outs = []
            for i in (-1, 0, 1, 5):
                interp = Interpreter(p)
                obj_a = HeapObject("A", {"x": 10, "y": 20})
                outs.append(interp.run("f", [obj_a, obj_a, i]).value)
            return outs

        expected = run_all(program)
        ReadEliminationPhase(program).run(program.function("f"))
        verify_graph(program.function("f"))
        assert run_all(program) == expected
