"""Quickening: specialization on first execution, deopt exactness.

The deopt paths carry the whole correctness burden: a guarded site
that bails must rewrite itself back to the generic tuple *and* execute
the failing occurrence through the generic handler, so values, steps,
metered cycles and traps are bit-identical to the reference on both
sides of the escape.  These tests drive each guard through its failure
(int overflow wrap, reference-typed compare) and assert exact parity,
plus the never-deopt constant forms and the metrics they emit.
"""

import pytest

from repro.costmodel.model import cycles_of
from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.vm import VirtualMachine, translate_program
from repro.vm.quicken import (
    OP_ADD_Q,
    OP_ADD_RC,
    OP_DIV_RC,
    OP_EQ_II,
    OP_MUL_Q,
    quicken_function,
)


def quickened_main(source: str, *run_args):
    """Translate, run once (forcing quickening), return (vm, fn)."""
    program = compile_source(source)
    bytecode = translate_program(program)
    vm = VirtualMachine(bytecode, metered=True)
    for args in run_args or ([0],):
        vm.reset()
        vm.run("main", list(args))
    return vm, bytecode.function("main")


def assert_parity(source: str, arg_sets):
    program = compile_source(source)
    bytecode = translate_program(program)
    reference = Interpreter(
        program, cycle_cost=cycles_of, terminator_cost=cycles_of
    )
    vm = VirtualMachine(bytecode, metered=True)
    for args in arg_sets:
        reference.reset()
        vm.reset()
        ref = reference.run("main", list(args))
        out = vm.run("main", list(args))
        assert (ref.value, ref.trap) == (out.value, out.trap)
        assert (ref.steps, ref.cycles) == (out.steps, out.cycles)
    return vm, bytecode.function("main")


# ----------------------------------------------------------------------
# Const-operand baking (never deoptimizes)
# ----------------------------------------------------------------------
# Sites under test sit between array ops: trapping instructions can
# neither lead nor trail a superinstruction, so the site stays a plain
# weight-1 tuple for quickening to rewrite.
BAKE_ADD = """
fn main(x: int) -> int {
  var a: int[] = new int[3];
  a[0] = x;
  a[1] = a[0] + 7;
  return a[1];
}
"""


def test_const_right_operand_is_baked():
    vm, fn = quickened_main(BAKE_ADD, [3])
    baked = [ins for ins in fn.xcode if ins[0] == OP_ADD_RC]
    assert baked and baked[0][5] == 7  # the value, not a register


def test_const_left_operand_uses_mirrored_form():
    # `5 < x` has the constant on the LEFT; commutative/mirrored forms
    # bake it anyway (K < x becomes x > K).
    source = """
    fn main(x: int) -> int {
      var a: int[] = new int[3];
      a[0] = x;
      var c: bool = 5 < a[0];
      a[1] = 7 * a[2];
      if (c) { return a[1] + 1; }
      return a[1];
    }
    """
    vm, fn = assert_parity(source, [[0], [5], [6], [100]])
    from repro.vm.quicken import OP_GT_RC, OP_MUL_RC

    ops = {ins[0] for ins in fn.xcode}
    assert OP_GT_RC in ops  # 5 < y quickened as y > 5
    assert OP_MUL_RC in ops  # 7 * y quickened with the const baked


def test_div_by_nonzero_const_drops_zero_check():
    vm, fn = quickened_main(
        "fn main(x: int) -> int { return x / 3; }", [10]
    )
    assert any(ins[0] == OP_DIV_RC for ins in fn.xcode)


def test_div_by_zero_const_stays_generic():
    # x / 0 must still trap like the reference — never specialized.
    source = "fn main(x: int) -> int { return x / 0; }"
    vm, fn = assert_parity(source, [[1]])
    assert not any(ins[0] == OP_DIV_RC for ins in fn.xcode)


def test_baked_sites_keep_cost_and_weight():
    vm, fn = quickened_main(BAKE_ADD, [3])
    for pc, ins in enumerate(fn.xcode):
        if ins[0] == OP_ADD_RC:
            assert ins[1] == fn.code[pc][1]  # original baked cycle cost
            assert ins[-1] == 1  # still one step


def test_superinstruction_sites_are_skipped():
    # Quickening must not touch fused slots or their padding.
    source = """
    fn main(n: int) -> int {
      var h: int = 7;
      var i: int = 0;
      while (i < n) { h = (h ^ i) * 31 + i; i = i + 1; }
      return h;
    }
    """
    program = compile_source(source)
    bytecode = translate_program(program)
    fn = bytecode.function("main")
    before = [(ins[0], ins[-1]) for ins in fn.xcode if ins[-1] > 1]
    quicken_function(fn)
    after = [(ins[0], ins[-1]) for ins in fn.xcode if ins[-1] > 1]
    assert before == after and fn.quickened


# ----------------------------------------------------------------------
# Guarded fast paths and their deopts
# ----------------------------------------------------------------------
# The guarded add sits between an array load and an array store
# (trapping neighbours block fusion, so the site stays weight-1 and
# quickens to the int fast path); a[0] starts n below INT_MAX, so the
# sum leaves the signed range once i exceeds n — quicken first, then
# deopt mid-run.
OVERFLOW = """
fn main(n: int) -> int {
  var a: int[] = new int[2];
  a[0] = 9223372036854775807 - n;
  var i: int = 0;
  while (i < 40) {
    a[1] = a[0] + i;
    i = i + 1;
  }
  return a[1];
}
"""


def test_add_overflow_deopts_with_exact_wrap_and_accounting():
    # n=50 never overflows (the guard holds for all 40 iterations);
    # n=3 quickens on the early iterations and then the guard fails —
    # the generic handler wraps this occurrence, and values, steps and
    # cycles stay identical to the reference throughout.
    assert_parity(OVERFLOW, [[50], [3], [0]])


def test_mul_overflow_deopts():
    source = """
    fn main(n: int) -> int {
      var a: int[] = new int[2];
      a[0] = 3037000499 + n;
      a[1] = a[0] * a[0];
      return a[1];
    }
    """
    # 3037000499^2 < 2^63; larger n push the square past INT_MAX, so
    # the quickened mul guard fails and the generic handler wraps.
    registry = MetricsRegistry()
    with use_registry(registry):
        assert_parity(source, [[0], [1], [1000000000]])
    assert registry.snapshot().counter_value(
        "repro_vm_deopts_total", opcode="mul"
    ) > 0


def test_eq_type_change_deopts():
    # First calls compare ints (quickens to the int-int fast path);
    # the later call compares references, failing the class guard.
    source = """
    class Box { v: int; }
    fn same(a: Box, b: Box) -> bool { return a == b; }
    fn main(n: int) -> int {
      var i: int = 0;
      var hits: int = 0;
      while (i < n) {
        if (i == 3) { hits = hits + 1; }
        i = i + 1;
      }
      var p: Box = new Box;
      var q: Box = new Box;
      if (same(p, p)) { hits = hits + 100; }
      if (same(p, q)) { hits = hits + 1000; }
      return hits;
    }
    """
    assert_parity(source, [[0], [5], [10]])


def test_deopt_is_permanent():
    program = compile_source(OVERFLOW)
    bytecode = translate_program(program)
    vm = VirtualMachine(bytecode, metered=True)
    fn = bytecode.function("main")
    vm.run("main", [3])  # quickens, then deopts on the overflow
    guarded_after_first = sum(
        1 for ins in fn.xcode if ins[0] in (OP_ADD_Q, OP_MUL_Q)
    )
    snapshot = [ins[0] for ins in fn.xcode]
    vm.reset()
    vm.run("main", [3])
    # Deopted sites stay generic (no re-quickening churn on later runs)
    assert [ins[0] for ins in fn.xcode] == snapshot
    assert sum(
        1 for ins in fn.xcode if ins[0] in (OP_ADD_Q, OP_MUL_Q)
    ) == guarded_after_first


def test_guarded_site_installed_before_deopt():
    source = """
    fn main(x: int) -> int {
      var a: int[] = new int[3];
      a[0] = x;
      a[1] = a[0] + a[2];
      return a[1];
    }
    """
    vm, fn = quickened_main(source, [4])
    assert any(ins[0] == OP_ADD_Q for ins in fn.xcode)


def test_eq_ii_guard_installed_for_reg_reg_compare():
    vm, fn = quickened_main(
        "fn main(x: int) -> int { var y: int = x; if (x == y) { return 1; } return 0; }",
        [4],
    )
    # Depending on fusion the compare may be consumed by cmp+branch;
    # when it survives as a weight-1 site it must be the guarded form.
    survivors = [ins for ins in fn.xcode if ins[0] == OP_EQ_II]
    fused = [ins for ins in fn.xcode if ins[-1] > 1]
    assert survivors or fused


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_quicken_and_deopt_metrics():
    registry = MetricsRegistry()
    with use_registry(registry):
        program = compile_source(OVERFLOW)
        vm = VirtualMachine.for_program(program, metered=True)
        vm.run("main", [3])
    snap = registry.snapshot()
    assert snap.counter_total("repro_vm_quickened_sites_total") > 0
    assert snap.counter_total("repro_vm_deopts_total") > 0
    assert snap.counter_value("repro_vm_deopts_total", opcode="add") > 0


@pytest.mark.parametrize("metered", [False, True], ids=["plain", "metered"])
def test_budget_timing_unchanged_by_quickening(metered):
    # Run once to quicken, then sweep caps: the rewritten stream must
    # stop at exactly the same step as the reference every time.
    from repro.interp.interpreter import BudgetExceeded

    program = compile_source(OVERFLOW)
    bytecode = translate_program(program)
    warm = VirtualMachine(bytecode, metered=metered)
    total = warm.run("main", [3]).steps
    for cap in range(1, total + 2, 7):
        reference = Interpreter(
            program,
            max_steps=cap,
            cycle_cost=cycles_of if metered else None,
            terminator_cost=cycles_of if metered else None,
        )
        vm = VirtualMachine(bytecode, max_steps=cap, metered=metered)
        ref_msg = vm_msg = None
        try:
            reference.run("main", [3])
        except BudgetExceeded as exc:
            ref_msg = str(exc)
        try:
            vm.run("main", [3])
        except BudgetExceeded as exc:
            vm_msg = str(exc)
        assert ref_msg == vm_msg
        assert reference.state.steps == vm.state.steps
        if metered:
            assert reference.state.cycles == vm.state.cycles
