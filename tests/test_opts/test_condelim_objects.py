"""Conditional elimination over reference stamps: null-check chains
through allocations, parameters and merges."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import HeapObject, Interpreter
from repro.ir import If, verify_graph
from repro.opts.canonicalize import CanonicalizerPhase
from repro.opts.condelim import ConditionalEliminationPhase


def branches(graph):
    return sum(1 for b in graph.blocks if isinstance(b.terminator, If))


def optimize(source, name="f"):
    program = compile_source(source)
    graph = program.function(name)
    CanonicalizerPhase().run(graph)
    ConditionalEliminationPhase().run(graph)
    CanonicalizerPhase().run(graph)
    verify_graph(graph)
    return program, graph


class TestAllocationsAreNonNull:
    def test_null_check_on_fresh_object_folds(self):
        program, graph = optimize(
            """
class A { x: int; }
fn f(v: int) -> int {
  var a: A = new A { x = v };
  if (a == null) { return 0 - 1; }
  return a.x;
}
"""
        )
        assert branches(graph) == 0
        assert Interpreter(program).run("f", [9]).value == 9

    def test_array_allocation_non_null(self):
        program, graph = optimize(
            """
fn f(n: int) -> int {
  var xs: int[] = new int[4];
  if (xs != null) { return len(xs); }
  return 0 - 1;
}
"""
        )
        assert branches(graph) == 0
        assert Interpreter(program).run("f", [0]).value == 4


class TestParameterNullness:
    def test_checked_then_rechecked(self):
        program, graph = optimize(
            """
class A { x: int; }
fn f(a: A) -> int {
  if (a == null) { return 0; }
  if (a != null) { return a.x; }
  return 0 - 1;
}
"""
        )
        assert branches(graph) == 1
        assert Interpreter(program).run("f", [None]).value == 0
        assert Interpreter(program).run("f", [HeapObject("A", {"x": 3})]).value == 3

    def test_null_branch_knows_value_is_null(self):
        program, graph = optimize(
            """
class A { x: int; }
fn f(a: A, b: A) -> int {
  if (a == null) {
    if (a == null) { return 1; }
    return 2;
  }
  return 3;
}
"""
        )
        assert branches(graph) == 1

    def test_distinct_parameters_not_conflated(self):
        _, graph = optimize(
            """
class A { x: int; }
fn f(a: A, b: A) -> int {
  if (a != null) {
    if (b != null) { return 1; }
    return 2;
  }
  return 3;
}
"""
        )
        assert branches(graph) == 2  # b's check is independent


class TestMergedNullness:
    def test_phi_of_non_null_values(self):
        """Both phi inputs are non-null allocations; our stamps do not
        propagate meet-over-phis, so the check survives — documenting
        the precision boundary (duplication is what rescues it)."""
        program, graph = optimize(
            """
class A { x: int; }
fn f(c: bool) -> int {
  var p: A;
  if (c) { p = new A { x = 1 }; } else { p = new A { x = 2 }; }
  if (p == null) { return 0 - 1; }
  return p.x;
}
"""
        )
        # The null check after the merge is not folded by CE alone...
        assert Interpreter(program).run("f", [True]).value == 1
        assert Interpreter(program).run("f", [False]).value == 2

    def test_dbds_rescues_the_merged_check(self):
        from repro.pipeline.compiler import compile_and_profile
        from repro.pipeline.config import DBDS

        source = """
class A { x: int; }
fn f(c: bool) -> int {
  var p: A;
  if (c) { p = new A { x = 1 }; } else { p = new A { x = 2 }; }
  if (p == null) { return 0 - 1; }
  return p.x;
}
fn main(i: int) -> int { return f(i % 2 == 0); }
"""
        program, report = compile_and_profile(source, "main", [[k] for k in range(8)], DBDS)
        graph = program.function("main")
        # After duplication + PEA the entire thing folds: no branches on
        # null remain and no allocations either.
        from repro.ir import New

        allocs = [
            i for b in graph.blocks for i in b.instructions if isinstance(i, New)
        ]
        assert allocs == []
        assert Interpreter(program).run("main", [2]).value == 1
        assert Interpreter(program).run("main", [3]).value == 2
