"""The compiler back end: lowering, register allocation, emission.

Reproduces the lower half of the paper's Section 5.1 system overview —
the IR "is then lowered into a platform specific version on which ...
register allocation [is] done.  In a final step machine code is
emitted."  See :mod:`repro.backend.lir` for the design.

Typical use::

    from repro.backend import compile_to_machine, Machine, program_bytes

    lir = compile_to_machine(program)         # lower + allocate
    result = Machine(lir).run("main", [10])   # execute
    size = program_bytes(lir)                 # installed-code bytes
"""

from .codesize import function_bytes, instruction_bytes, program_bytes
from .lir import (
    Immediate,
    LirBlock,
    LirFunction,
    LirProgram,
    PReg,
    StackSlot,
    VReg,
)
from .liveness import LiveInterval, compute_intervals, compute_liveness
from .lowering import LoweringError, lower_graph, lower_program
from .machine import Machine, MachineResult
from .regalloc import DEFAULT_REGISTER_COUNT, AllocationResult, allocate, allocate_program


def compile_to_machine(program, register_count: int = DEFAULT_REGISTER_COUNT):
    """Lower a (typically already optimized) IR program and allocate
    registers; the result is executable by :class:`Machine` and sizable
    by :func:`program_bytes`.  Both back-end stages report to the
    ambient tracer as ``phase`` spans (``lowering`` / ``regalloc``)."""
    from ..obs.tracer import current_tracer

    tracer = current_tracer()
    with tracer.span("phase", phase="lowering"):
        lir = lower_program(program)
    with tracer.span("phase", phase="regalloc"):
        allocate_program(lir, register_count)
    return lir


__all__ = [
    "allocate", "allocate_program", "AllocationResult",
    "compile_to_machine", "compute_intervals", "compute_liveness",
    "DEFAULT_REGISTER_COUNT", "function_bytes", "Immediate",
    "instruction_bytes", "LirBlock", "LirFunction", "LirProgram",
    "LiveInterval", "lower_graph", "lower_program", "LoweringError",
    "Machine", "MachineResult", "PReg", "program_bytes", "StackSlot",
    "VReg",
]
