"""Tests for the unified metrics registry (docs/OBSERVABILITY.md)."""

import json

import pytest

from repro.obs.metrics import (
    BYTES_BUCKETS,
    HISTOGRAM_BUCKETS,
    NULL_REGISTRY,
    SECONDS_BUCKETS,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetricsRegistry,
    current_registry,
    exponential_buckets,
    label_key,
    merge_snapshots,
    parse_label_key,
    use_registry,
)


class TestBuckets:
    def test_exponential_layout(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_rejects_degenerate_layouts(self):
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 2.0, 0)

    def test_declared_layouts_are_known_constants(self):
        assert HISTOGRAM_BUCKETS["repro_compile_phase_seconds"] is SECONDS_BUCKETS
        assert HISTOGRAM_BUCKETS["repro_cache_entry_bytes"] is BYTES_BUCKETS


class TestLabelKeys:
    def test_sorted_and_roundtrips(self):
        key = label_key({"b": 2, "a": "x"})
        assert key == "a=x,b=2"
        assert parse_label_key(key) == {"a": "x", "b": "2"}
        assert parse_label_key("") == {}


class TestHistogramData:
    def test_observe_places_values(self):
        data = HistogramData(buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            data.observe(value)
        assert data.counts == [1, 1, 1, 1]  # final slot = overflow
        assert data.count == 4
        assert data.sum == pytest.approx(555.5)

    def test_boundary_goes_to_lower_bucket(self):
        # bisect_left: a value equal to a bound lands in that bound's
        # bucket, matching Prometheus's le= (less-or-equal) semantics.
        data = HistogramData(buckets=(1.0, 10.0))
        data.observe(1.0)
        assert data.counts == [1, 0, 0]

    def test_merge_adds_elementwise(self):
        a = HistogramData(buckets=(1.0, 10.0))
        b = HistogramData(buckets=(1.0, 10.0))
        a.observe(0.5)
        b.observe(5.0)
        b.observe(50.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3

    def test_merge_rejects_layout_mismatch(self):
        a = HistogramData(buckets=(1.0, 10.0))
        b = HistogramData(buckets=(1.0,))
        with pytest.raises(ValueError):
            a.merge(b)


class TestRegistry:
    def test_counters_accumulate_per_label_set(self):
        registry = MetricsRegistry()
        registry.inc("repro_cache_lookups_total", result="hit")
        registry.inc("repro_cache_lookups_total", 2, result="miss")
        registry.inc("repro_cache_lookups_total", result="hit")
        snap = registry.snapshot()
        assert snap.counter_value("repro_cache_lookups_total", result="hit") == 2
        assert snap.counter_value("repro_cache_lookups_total", result="miss") == 2
        assert snap.counter_total("repro_cache_lookups_total") == 4

    def test_gauges_keep_last_value(self):
        registry = MetricsRegistry()
        registry.set_gauge("repro_batch_queue_depth", 7)
        registry.set_gauge("repro_batch_queue_depth", 3)
        assert registry.snapshot().gauge_value("repro_batch_queue_depth") == 3

    def test_histograms_use_declared_layout(self):
        registry = MetricsRegistry()
        registry.observe("repro_cache_entry_bytes", 1024.0, op="put")
        data = registry.snapshot().histogram("repro_cache_entry_bytes", op="put")
        assert data.buckets == BYTES_BUCKETS
        assert data.count == 1

    def test_undeclared_histogram_falls_back_to_seconds(self):
        registry = MetricsRegistry()
        registry.observe("custom_seconds", 0.001)
        assert registry.snapshot().histogram("custom_seconds").buckets == (
            SECONDS_BUCKETS
        )

    def test_snapshot_is_a_deep_copy(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.observe("h", 1.0)
        snap = registry.snapshot()
        registry.inc("c")
        registry.observe("h", 2.0)
        assert snap.counter_value("c") == 1
        assert snap.histogram_count("h") == 1


class TestSnapshotMerge:
    def make(self, hits: int, depth: float) -> MetricsSnapshot:
        registry = MetricsRegistry()
        registry.inc("repro_cache_lookups_total", hits, result="hit")
        registry.set_gauge("repro_batch_queue_depth", depth)
        registry.observe("repro_batch_job_seconds", 0.01)
        return registry.snapshot()

    def test_counters_add_gauges_take_max(self):
        merged = self.make(2, 5.0).merge(self.make(3, 2.0))
        assert merged.counter_value("repro_cache_lookups_total", result="hit") == 5
        assert merged.gauge_value("repro_batch_queue_depth") == 5.0
        assert merged.histogram_count("repro_batch_job_seconds") == 2

    def test_merge_is_order_independent(self):
        parts = [self.make(i, float(i)) for i in (1, 2, 3)]
        forward = merge_snapshots(
            MetricsSnapshot.from_json(p.to_json()) for p in parts
        )
        backward = merge_snapshots(
            MetricsSnapshot.from_json(p.to_json()) for p in reversed(parts)
        )
        assert forward.to_json() == backward.to_json()

    def test_registry_merge_snapshot_folds_in(self):
        registry = MetricsRegistry()
        registry.inc("repro_cache_lookups_total", result="hit")
        registry.merge_snapshot(self.make(4, 1.0))
        assert (
            registry.snapshot().counter_value(
                "repro_cache_lookups_total", result="hit"
            )
            == 5
        )


class TestSerialization:
    def test_json_roundtrip_is_lossless(self):
        registry = MetricsRegistry()
        registry.inc("repro_batch_jobs_total", 2, outcome="compiled")
        registry.set_gauge("repro_batch_queue_depth", 9)
        registry.observe("repro_batch_job_seconds", 0.25)
        snap = registry.snapshot()
        blob = json.dumps(snap.to_json(), sort_keys=True)
        restored = MetricsSnapshot.from_json(json.loads(blob))
        assert restored.to_json() == snap.to_json()

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.inc("repro_cache_lookups_total", 3, result="hit")
        registry.set_gauge("repro_batch_queue_depth", 4)
        registry.observe("repro_batch_job_seconds", 0.02)
        text = registry.snapshot().render_prometheus()
        assert "# TYPE repro_cache_lookups_total counter" in text
        assert 'repro_cache_lookups_total{result="hit"} 3' in text
        assert "# TYPE repro_batch_queue_depth gauge" in text
        assert "# TYPE repro_batch_job_seconds histogram" in text
        assert 'repro_batch_job_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_batch_job_seconds_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        for value in (1e-5, 1e-3, 1e-1):
            registry.observe("repro_batch_job_seconds", value)
        text = registry.snapshot().render_prometheus()
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_batch_job_seconds_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 3  # +Inf bucket holds every observation


class TestAmbientRegistry:
    def test_null_is_ambient_default(self):
        assert current_registry() is NULL_REGISTRY
        assert not NULL_REGISTRY.enabled

    def test_null_registry_drops_everything(self):
        registry = NullMetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 1)
        registry.observe("h", 1.0)
        snap = registry.snapshot()
        assert snap.counters == {} and snap.gauges == {} and snap.histograms == {}

    def test_use_registry_installs_and_restores(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            assert current_registry() is registry
            inner = MetricsRegistry()
            with use_registry(inner):
                assert current_registry() is inner
            assert current_registry() is registry
        assert current_registry() is NULL_REGISTRY

    def test_restored_after_exception(self):
        try:
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_registry() is NULL_REGISTRY
