"""Command-line interface: compile and run MiniLang programs.

Usage::

    python -m repro run program.mini --entry main --args 10 --config dbds
    python -m repro compile program.mini --config dupalot --dump --json
    python -m repro trace program.mini --config dbds --out trace.jsonl
    python -m repro bench --suite micro --profile-compile

``run`` JIT-compiles (profile run + optimization) and executes, printing
the result and the simulated cycle count.  ``compile`` prints per-unit
metrics and optionally the optimized IR.  ``trace`` compiles under a
recording tracer and prints the aggregated compile profile.  ``bench``
regenerates one of the paper's evaluation figures.  ``run``,
``compile`` and ``bench`` all accept ``--trace-out FILE`` (write the
JSONL event trace) and ``--profile-compile`` (print the per-phase
profile); see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from .bench.harness import format_suite_report, run_suite, suite_report_json
from .bench.workloads.suites import ALL_SUITES
from .frontend.irbuilder import compile_source
from .interp.interpreter import Interpreter
from .obs import CompileProfile, Tracer, write_jsonl
from .pipeline.compiler import Compiler, compile_and_profile, measure_performance
from .pipeline.config import CONFIGURATIONS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("source", type=pathlib.Path, help="MiniLang source file")
    parser.add_argument("--entry", default="main", help="entry function")
    parser.add_argument(
        "--config",
        default="dbds",
        choices=sorted(CONFIGURATIONS),
        help="compiler configuration",
    )
    parser.add_argument(
        "--args",
        nargs="*",
        type=int,
        default=[10],
        help="integer arguments for the entry function",
    )


def _add_observability(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        type=pathlib.Path,
        default=None,
        help="write the JSONL event trace to this file",
    )
    parser.add_argument(
        "--profile-compile",
        action="store_true",
        help="print the aggregated per-phase compile profile",
    )


def _make_tracer(args: argparse.Namespace) -> Tracer | None:
    """An event-recording tracer when any telemetry output was asked."""
    if args.trace_out is not None or args.profile_compile:
        return Tracer()
    return None


def _emit_observability(args: argparse.Namespace, tracer: Tracer | None) -> None:
    if tracer is None:
        return
    if args.trace_out is not None:
        records = write_jsonl(tracer, args.trace_out)
        print(f"trace: {records} records -> {args.trace_out}", file=sys.stderr)
    if args.profile_compile:
        print(CompileProfile.from_tracer(tracer).format())


def cmd_run(args: argparse.Namespace) -> int:
    source = args.source.read_text()
    config = CONFIGURATIONS[args.config]
    tracer = _make_tracer(args)
    program, report = compile_and_profile(
        source, args.entry, [args.args], config, tracer=tracer
    )
    cycles, results = measure_performance(program, args.entry, [args.args])
    result = results[0]
    if result.trapped:
        print(f"trap: {result.trap}", file=sys.stderr)
        return 1
    print(f"result          : {result.value}")
    print(f"simulated cycles: {cycles:.0f}")
    print(f"compile time    : {report.total_compile_time * 1e3:.2f} ms")
    print(f"code size       : {report.total_code_size:.0f}")
    print(f"duplications    : {report.total_duplications}")
    _emit_observability(args, tracer)
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    source = args.source.read_text()
    config = CONFIGURATIONS[args.config]
    program = compile_source(source)
    tracer = _make_tracer(args)
    report = Compiler(config, tracer=tracer).compile_program(program)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(f"{'function':<20s}{'size':>8s}{'ctime ms':>10s}{'dups':>6s}")
        for unit in report.units:
            print(
                f"{unit.function:<20s}{unit.code_size:>8.0f}"
                f"{unit.compile_time * 1e3:>10.2f}{unit.duplications:>6d}"
            )
    if args.dump:
        print()
        print(program.describe())
    _emit_observability(args, tracer)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Compile under a recording tracer; print the profile report."""
    source = args.source.read_text()
    config = CONFIGURATIONS[args.config]
    program = compile_source(source)
    tracer = Tracer()
    Compiler(config, tracer=tracer).compile_program(program)
    print(CompileProfile.from_tracer(tracer).format(top=args.top))
    if args.decisions:
        from .dbds.explain import format_decision_events

        print()
        print("DBDS decisions:")
        print(format_decision_events(tracer.events))
    if args.out is not None:
        records = write_jsonl(tracer, args.out)
        print(f"trace: {records} records -> {args.out}", file=sys.stderr)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    profile = ALL_SUITES[args.suite]
    profile_phases = args.profile_compile or args.trace_out is not None
    report = run_suite(profile, seed=args.seed, profile_phases=profile_phases)
    print(format_suite_report(report))
    if args.trace_out is not None:
        args.trace_out.write_text(json.dumps(suite_report_json(report), indent=2))
        print(f"suite report -> {args.trace_out}", file=sys.stderr)
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    from .bench.report import render_markdown, run_evaluation

    result = run_evaluation(suites=args.suites, seed=args.seed)
    markdown = render_markdown(result)
    args.out.write_text(markdown)
    headline = result.headline()
    print(f"report written to {args.out}")
    print(
        f"mean speedup {headline['mean_speedup']:+.2f}%  "
        f"(max {headline['max_speedup']:+.2f}% on "
        f"{headline['max_speedup_benchmark']})"
    )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from .dbds.explain import explain_graph
    from .interp.profile import apply_profile, profile_program
    from .opts.canonicalize import CanonicalizerPhase
    from .opts.inline import InliningPhase

    program = compile_source(args.source.read_text())
    if args.profile_args is not None:
        collector = profile_program(program, args.entry, [args.profile_args])
        apply_profile(program, collector)
    names = [args.function] if args.function else list(program.functions)
    for name in names:
        graph = program.function(name)
        InliningPhase(program).run(graph)
        CanonicalizerPhase().run(graph)
        print(explain_graph(graph, program))
        print()
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    from .bench.workloads.suites import generate_workload

    profile = ALL_SUITES[args.suite]
    name = args.name or profile.benchmark_names[0]
    if name not in profile.benchmark_names:
        print(
            f"unknown benchmark {name!r}; choose from "
            f"{', '.join(profile.benchmark_names)}",
            file=sys.stderr,
        )
        return 1
    workload = generate_workload(profile, name, args.seed)
    print(workload.source)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="DBDS reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="JIT-compile and execute")
    _add_common(run_parser)
    _add_observability(run_parser)
    run_parser.set_defaults(func=cmd_run)

    compile_parser = sub.add_parser("compile", help="compile and show metrics")
    _add_common(compile_parser)
    _add_observability(compile_parser)
    compile_parser.add_argument(
        "--dump", action="store_true", help="print the optimized IR"
    )
    compile_parser.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    compile_parser.set_defaults(func=cmd_compile)

    trace_parser = sub.add_parser(
        "trace", help="compile under a recording tracer, print the profile"
    )
    trace_parser.add_argument("source", type=pathlib.Path)
    trace_parser.add_argument(
        "--config",
        default="dbds",
        choices=sorted(CONFIGURATIONS),
        help="compiler configuration",
    )
    trace_parser.add_argument(
        "--out", type=pathlib.Path, default=None, help="write the JSONL trace here"
    )
    trace_parser.add_argument(
        "--top", type=int, default=10, help="rows per profile section"
    )
    trace_parser.add_argument(
        "--decisions",
        action="store_true",
        help="also list every DBDS decision event",
    )
    trace_parser.set_defaults(func=cmd_trace)

    bench_parser = sub.add_parser("bench", help="run one evaluation suite")
    bench_parser.add_argument("--suite", default="micro", choices=sorted(ALL_SUITES))
    bench_parser.add_argument("--seed", type=int, default=0)
    _add_observability(bench_parser)
    bench_parser.set_defaults(func=cmd_bench)

    evaluate_parser = sub.add_parser(
        "evaluate", help="run the full evaluation, write a markdown report"
    )
    evaluate_parser.add_argument(
        "--suites",
        nargs="*",
        choices=sorted(ALL_SUITES),
        default=None,
        help="suites to run (default: all four)",
    )
    evaluate_parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("evaluation_report.md")
    )
    evaluate_parser.add_argument("--seed", type=int, default=0)
    evaluate_parser.set_defaults(func=cmd_evaluate)

    explain_parser = sub.add_parser(
        "explain", help="report every duplication candidate and decision"
    )
    explain_parser.add_argument("source", type=pathlib.Path)
    explain_parser.add_argument(
        "--function", default=None, help="only this function (default: all)"
    )
    explain_parser.add_argument(
        "--profile-args",
        nargs="*",
        type=int,
        default=None,
        help="profile with these entry args before explaining",
    )
    explain_parser.add_argument("--entry", default="main")
    explain_parser.set_defaults(func=cmd_explain)

    workload_parser = sub.add_parser(
        "workload", help="print a generated benchmark's MiniLang source"
    )
    workload_parser.add_argument("--suite", default="micro", choices=sorted(ALL_SUITES))
    workload_parser.add_argument("--name", default=None, help="benchmark name")
    workload_parser.add_argument("--seed", type=int, default=0)
    workload_parser.set_defaults(func=cmd_workload)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
