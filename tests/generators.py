"""Compatibility shim: the generator moved into the package so the
``repro check --fuzz`` CLI and the translation-validation harness can
use it (see :mod:`repro.analysis.progen`).

Re-exports the *whole* public surface of :mod:`repro.analysis.progen`
— including the :class:`SourceMutator` additions — under the historic
``tests.generators`` name; ``test_generators_shim.py`` keeps the two
``__all__`` lists in lockstep so the shim can never silently fall
behind the package module again.
"""

from repro.analysis.progen import (
    MUTATION_KINDS,
    MutatedProgram,
    ProgramGenerator,
    SourceMutator,
    mutated_program,
    random_program,
)

__all__ = [
    "MUTATION_KINDS",
    "MutatedProgram",
    "ProgramGenerator",
    "SourceMutator",
    "mutated_program",
    "random_program",
]
