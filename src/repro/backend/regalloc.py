"""Linear-scan register allocation (Poletto & Sarkar style).

Intervals are walked in start order; expired intervals free their
register; when the register file is exhausted the interval with the
furthest end is spilled to a stack slot.  Spilled values are addressed
directly through CISC-style stack operands (see package docstring), so
no fix-up code is inserted — register pressure shows up as code size
(stack operands encode larger) rather than extra instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .lir import LirFunction, Location, PReg, StackSlot, VReg
from .liveness import LiveInterval, compute_intervals

DEFAULT_REGISTER_COUNT = 8


@dataclass
class AllocationResult:
    """Mapping and statistics of one allocation run."""

    mapping: dict[VReg, Location] = field(default_factory=dict)
    intervals: list[LiveInterval] = field(default_factory=list)
    spills: int = 0
    registers_used: int = 0
    frame_slots: int = 0


def allocate(
    function: LirFunction, register_count: int = DEFAULT_REGISTER_COUNT
) -> AllocationResult:
    """Allocate locations for every virtual register and rewrite the
    function's instructions in place."""
    result = AllocationResult(intervals=compute_intervals(function))
    free = list(range(register_count - 1, -1, -1))  # pop() yields r0 first
    active: list[tuple[LiveInterval, int]] = []  # (interval, register)
    next_slot = 0

    for interval in result.intervals:
        # Expire old intervals.
        still_active = []
        for act, reg in active:
            if act.end < interval.start:
                free.append(reg)
            else:
                still_active.append((act, reg))
        active = still_active

        if free:
            reg = free.pop()
            active.append((interval, reg))
            result.mapping[interval.vreg] = PReg(reg)
            continue
        # Spill the interval that ends last (it blocks the most).
        victim_index = max(
            range(len(active)), key=lambda i: active[i][0].end
        )
        victim, victim_reg = active[victim_index]
        if victim.end > interval.end:
            # Steal the victim's register; the victim goes to the stack.
            result.mapping[victim.vreg] = StackSlot(next_slot)
            next_slot += 1
            result.spills += 1
            active[victim_index] = (interval, victim_reg)
            result.mapping[interval.vreg] = PReg(victim_reg)
        else:
            result.mapping[interval.vreg] = StackSlot(next_slot)
            next_slot += 1
            result.spills += 1

    result.registers_used = min(register_count, len(result.intervals))
    result.frame_slots = next_slot

    for block in function.block_order():
        for ins in block.instructions:
            ins.replace_operands(result.mapping)
    # Parameters land in their allocated homes on entry.
    function.param_regs = [
        result.mapping[reg] for reg in function.param_regs
    ]
    function.frame_slots = next_slot
    function.register_count = register_count
    return result


def allocate_program(lir_program, register_count: int = DEFAULT_REGISTER_COUNT):
    """Allocate every function; returns per-function results."""
    return {
        name: allocate(fn, register_count)
        for name, fn in lir_program.functions.items()
    }
