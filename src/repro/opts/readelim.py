"""Read elimination (Section 2, Listings 5/6).

Eliminates fully redundant memory reads: field loads, global loads and
array loads that a dominating access already produced.  Memory state
flows forward along single-predecessor edges and is dropped at merges —
exactly why the paper's *partially* redundant reads need duplication to
become *fully* redundant: once the merge block is copied into a
predecessor, the read sits on a straight-line path from the first access
and this phase removes it.

Store-to-load forwarding is included (a store populates the cache), as
is default-value forwarding out of fresh allocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir.block import Block
from ..ir.cfgutils import reverse_post_order
from ..ir.graph import Graph, Program
from .base import Phase
from ..ir.nodes import (
    ArrayLoad,
    ArrayStore,
    Call,
    Instruction,
    LoadField,
    LoadGlobal,
    New,
    NewArray,
    StoreField,
    StoreGlobal,
    Value,
)


def may_alias(a: Value, b: Value) -> bool:
    """Whether two object-valued SSA values may denote the same object.

    Two distinct allocations never alias, and a fresh allocation never
    aliases a value that provably predates it (parameters, constants).
    Everything else conservatively may.
    """
    from ..ir.nodes import Constant, Parameter

    if a is b:
        return True
    for fresh, other in ((a, b), (b, a)):
        if isinstance(fresh, (New, NewArray)) and isinstance(
            other, (New, NewArray, Parameter, Constant)
        ):
            return False
    return True


@dataclass
class MemoryCache:
    """Known memory contents at a program point."""

    fields: dict[tuple[Value, str], Value] = field(default_factory=dict)
    globals_: dict[str, Value] = field(default_factory=dict)
    arrays: dict[tuple[Value, Value], Value] = field(default_factory=dict)

    def copy(self) -> "MemoryCache":
        return MemoryCache(dict(self.fields), dict(self.globals_), dict(self.arrays))

    def clear(self) -> None:
        self.fields.clear()
        self.globals_.clear()
        self.arrays.clear()

    # ------------------------------------------------------------------
    def read_field(self, obj: Value, fname: str) -> Optional[Value]:
        return self.fields.get((obj, fname))

    def write_field(self, obj: Value, fname: str, value: Value) -> None:
        for key in list(self.fields):
            other, other_field = key
            if other_field == fname and other is not obj and may_alias(other, obj):
                del self.fields[key]
        self.fields[(obj, fname)] = value

    def read_array(self, array: Value, index: Value) -> Optional[Value]:
        return self.arrays.get((array, index))

    def write_array(self, array: Value, index: Value, value: Value) -> None:
        for key in list(self.arrays):
            other, other_index = key
            if (other is not array or other_index is not index) and may_alias(
                other, array
            ):
                del self.arrays[key]
        self.arrays[(array, index)] = value


class ReadEliminationPhase(Phase):
    """Forward memory-state propagation + redundant read replacement."""

    name = "read-elimination"

    def __init__(self, program: Optional[Program] = None) -> None:
        self.program = program

    def run(self, graph: Graph) -> int:
        eliminated = 0
        in_state: dict[Block, MemoryCache] = {}
        for block in reverse_post_order(graph):
            cache = in_state.pop(block, None)
            if cache is None or block.is_merge():
                # Merges drop state: only *fully* redundant reads on the
                # incoming straight-line path are removed.
                cache = MemoryCache()
            eliminated += self._process_block(block, cache)
            for succ in block.successors:
                if len(succ.predecessors) == 1:
                    in_state[succ] = cache.copy()
        return eliminated

    # ------------------------------------------------------------------
    def _process_block(self, block: Block, cache: MemoryCache) -> int:
        eliminated = 0
        for ins in list(block.instructions):
            replacement = self._transfer(ins, cache)
            if replacement is not None:
                ins.replace_all_uses(replacement)
                block.remove_instruction(ins)
                eliminated += 1
        return eliminated

    def _transfer(self, ins: Instruction, cache: MemoryCache) -> Optional[Value]:
        """Update ``cache`` for ``ins``; return a replacement when the
        read is redundant."""
        if isinstance(ins, LoadField):
            known = cache.read_field(ins.obj, ins.field)
            if known is not None:
                return known
            cache.fields[(ins.obj, ins.field)] = ins
            return None
        if isinstance(ins, StoreField):
            cache.write_field(ins.obj, ins.field, ins.value)
            return None
        if isinstance(ins, LoadGlobal):
            known = cache.globals_.get(ins.global_name)
            if known is not None:
                return known
            cache.globals_[ins.global_name] = ins
            return None
        if isinstance(ins, StoreGlobal):
            cache.globals_[ins.global_name] = ins.value
            return None
        if isinstance(ins, ArrayLoad):
            known = cache.read_array(ins.array, ins.index)
            if known is not None:
                return known
            cache.arrays[(ins.array, ins.index)] = ins
            return None
        if isinstance(ins, ArrayStore):
            cache.write_array(ins.array, ins.index, ins.value)
            return None
        if isinstance(ins, New):
            self._seed_defaults(ins, cache)
            return None
        if isinstance(ins, Call):
            # The callee may read and write arbitrary memory.
            cache.clear()
            return None
        return None

    def _seed_defaults(self, alloc: New, cache: MemoryCache) -> None:
        """A fresh object's fields hold their type defaults."""
        if self.program is None:
            return
        graph = alloc.block.graph
        decl = self.program.class_table.lookup(alloc.object_type.class_name)
        for fdecl in decl.fields:
            default = fdecl.type.default_value()
            if default is None and not fdecl.type.is_reference():
                continue
            cache.fields[(alloc, fdecl.name)] = graph.constant(default, fdecl.type)
