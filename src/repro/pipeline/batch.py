"""Parallel batch compilation over many source files.

The serving-scale front door of the compiler: hand
:func:`compile_batch` a list of MiniLang sources and it compiles them
concurrently in a :class:`~concurrent.futures.ProcessPoolExecutor`
(``-j N``, default ``os.cpu_count()``), consulting a persistent
:class:`~repro.pipeline.cache.ArtifactCache` first — warm entries skip
the pipeline entirely and are served from disk without spawning a
worker.

Determinism contract: a batch compiled with ``jobs=1`` (run inline in
the calling process, no pool) and the same batch compiled with any
``jobs=N`` produce byte-identical artifact manifests per file — the
pool only changes *when* a unit is compiled, never *what* comes out.
``tests/test_pipeline/test_batch_differential.py`` enforces this.

Every worker compiles under its own event-recording
:class:`~repro.obs.tracer.Tracer`; the per-file traces come back to
the parent, where :meth:`BatchReport.profile` folds them into one
:class:`~repro.obs.profile.CompileProfile` so ``repro batch
--profile-compile`` shows a whole-fleet phase breakdown.  The parent
emits ``cache.hit``/``cache.miss``/``cache.store`` (via the cache) and
one ``batch.worker`` event per compiled file.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from ..analysis.blame import CHECK_OFF, PhaseBlameError
from ..frontend.irbuilder import compile_source
from ..interp.profile import apply_profile, profile_program
from ..ir.graph import Program
from ..obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    current_registry,
    use_registry,
)
from ..obs.profile import CompileProfile
from ..obs.sinks import event_from_dict, event_to_dict
from ..obs.tracer import Event, Tracer, current_tracer
from .cache import ArtifactCache, CacheEntry, cache_key
from .compiler import CompilationReport, Compiler
from .config import CompilerConfig, DBDS

#: one batch item: a filesystem path, or an explicit (name, source) pair
SourceSpec = Union[str, Path, tuple[str, str]]


@dataclass(frozen=True)
class BatchOptions:
    """Everything that shapes a batch compile (and its cache keys)."""

    config: CompilerConfig = DBDS
    #: worker processes; ``None`` = ``os.cpu_count()``; ``1`` = inline
    jobs: Optional[int] = None
    entry: str = "main"
    #: one profiling argument set for the entry function
    args: tuple[int, ...] = (10,)
    check_ir: str = CHECK_OFF
    #: ``--check-bc`` mode: "rewrite" verifies each worker's freshly
    #: translated bytecode (a failure is that file's ``error``); cache
    #: *loads* are verified by the cache itself when it was built with
    #: ``verify_bytecode != "off"``.  Not part of the cache key — the
    #: verifier only accepts/rejects, it never changes the artifact.
    check_bc: str = "off"
    fail_fast: bool = True
    cache: Optional[ArtifactCache] = None

    def effective_jobs(self, pending: int) -> int:
        jobs = self.jobs if self.jobs is not None else (os.cpu_count() or 1)
        return max(1, min(jobs, pending))


@dataclass
class FileResult:
    """Outcome of one batch item."""

    name: str
    key: str
    cached: bool = False
    manifest: dict[str, Any] = field(default_factory=dict)
    report: Optional[CompilationReport] = None
    events: list[Event] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    program_blob: bytes = b""
    error: Optional[str] = None
    check_failures: list[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None and not self.check_failures

    def program(self) -> Program:
        from .cache import unpack_artifact

        return unpack_artifact(self.program_blob)[0]

    def bytecode(self):
        from .cache import unpack_artifact

        return unpack_artifact(self.program_blob)[1]

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "key": self.key,
            "cached": self.cached,
            "ok": self.ok,
            "error": self.error,
            "check_failures": list(self.check_failures),
            "elapsed": self.elapsed,
            "digest": self.manifest.get("digest"),
            "report": self.report.to_json() if self.report else None,
        }


@dataclass
class BatchReport:
    """All results of one :func:`compile_batch` call, in input order."""

    config: str
    jobs: int
    results: list[FileResult] = field(default_factory=list)
    elapsed: float = 0.0
    cache_stats: Optional[dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def compiled(self) -> int:
        return sum(1 for r in self.results if not r.cached and r.error is None)

    def events(self) -> list[Event]:
        """Compile-trace events of every *freshly compiled* file.

        Cache hits contribute nothing here on purpose: a warm batch
        must show zero optimization-phase spans in its profile.
        """
        merged: list[Event] = []
        for result in self.results:
            if not result.cached:
                merged.extend(result.events)
        return merged

    def counters(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for result in self.results:
            if result.cached:
                continue
            for name, value in result.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def profile(self) -> CompileProfile:
        """One aggregated compile profile across all workers."""
        return CompileProfile.from_events(self.events(), counters=self.counters())

    def to_json(self) -> dict[str, Any]:
        return {
            "config": self.config,
            "jobs": self.jobs,
            "elapsed": self.elapsed,
            "ok": self.ok,
            "hits": self.hits,
            "compiled": self.compiled,
            "cache": self.cache_stats,
            "files": [result.to_json() for result in self.results],
            "profile": self.profile().to_json(),
        }

    def format(self) -> str:
        lines = [
            f"{'file':<34s}{'units':>6s}{'size':>8s}{'ctime ms':>10s}"
            f"{'dups':>6s}  {'origin'}"
        ]
        for result in self.results:
            if result.error is not None:
                lines.append(f"{result.name:<34s}  error: {result.error}")
                continue
            report = result.report
            origin = "cache" if result.cached else "compiled"
            lines.append(
                f"{result.name:<34s}{len(report.units):>6d}"
                f"{report.total_code_size:>8.0f}"
                f"{report.total_compile_time * 1e3:>10.2f}"
                f"{report.total_duplications:>6d}  {origin}"
            )
            for failure in result.check_failures:
                lines.append(f"    check failure: {failure}")
        lines.append(
            f"batch: {len(self.results)} file(s), {self.hits} from cache, "
            f"{self.compiled} compiled, jobs {self.jobs}, "
            f"{self.elapsed:.2f}s"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def _compile_worker(task: dict[str, Any]) -> dict[str, Any]:
    """Compile one source; runs in a pool worker (or inline for jobs=1).

    Takes and returns only picklable plain data so the same function is
    pool- and spawn-safe.  The worker always compiles under a recording
    tracer: the trace is what makes cached artifacts explainable and
    the batch profile aggregatable.  It likewise always compiles under
    its own :class:`MetricsRegistry`, whose snapshot rides back in the
    payload so the parent can fold worker metrics into one view —
    serial and parallel batches merge to identical totals.
    """
    tracer = Tracer()
    registry = MetricsRegistry()
    started = time.perf_counter()
    result: dict[str, Any] = {"name": task["name"], "pid": os.getpid()}
    try:
        with use_registry(registry):
            program = compile_source(task["source"])
            collector = profile_program(
                program, task["entry"], [list(task["args"])]
            )
            apply_profile(program, collector)
            compiler = Compiler(
                task["config"],
                tracer=tracer,
                check_ir=task["check_ir"],
                fail_fast=task["fail_fast"],
            )
            report = compiler.compile_program(program)
    except PhaseBlameError as exc:
        result["error"] = exc.format_blame()
        result["metrics"] = registry.snapshot().to_json()
        return result
    except Exception as exc:
        result["error"] = f"{type(exc).__name__}: {exc}"
        result["metrics"] = registry.snapshot().to_json()
        return result
    from ..analysis.bcverify import BytecodeVerificationError
    from ..vm import translate_program
    from .cache import artifact_manifest, pack_artifact

    try:
        with use_registry(registry):
            # Translation (superinstruction fusion counts fused sites on
            # the ambient registry) must run under the worker registry
            # too, or serial and parallel batches would merge different
            # totals.
            program_blob = pack_artifact(
                program,
                translate_program(
                    program, check_bc=task.get("check_bc", "off")
                ),
            )
    except BytecodeVerificationError as exc:
        result["error"] = exc.report.summary()
        result["metrics"] = registry.snapshot().to_json()
        return result
    result.update(
        report=report.to_json(),
        manifest=artifact_manifest(program, report, tracer.events),
        events=[event_to_dict(e) for e in tracer.events],
        counters=dict(tracer.counters),
        program_blob=program_blob,
        check_failures=[
            failure.format_blame() for failure in compiler.guard.failures
        ]
        if compiler.guard is not None
        else [],
        elapsed=time.perf_counter() - started,
        metrics=registry.snapshot().to_json(),
    )
    return result


def _result_from_worker(key: str, payload: dict[str, Any]) -> FileResult:
    if "error" in payload:
        return FileResult(name=payload["name"], key=key, error=payload["error"])
    return FileResult(
        name=payload["name"],
        key=key,
        cached=False,
        manifest=payload["manifest"],
        report=CompilationReport.from_json(payload["report"]),
        events=[event_from_dict(d) for d in payload["events"]],
        counters=payload["counters"],
        program_blob=payload["program_blob"],
        check_failures=payload["check_failures"],
        elapsed=payload["elapsed"],
    )


def _result_from_cache(name: str, key: str, entry: CacheEntry) -> FileResult:
    return FileResult(
        name=name,
        key=key,
        cached=True,
        manifest=entry.manifest,
        report=entry.report,
        events=list(entry.events),
        counters=dict(entry.counters),
        program_blob=entry.program_blob,
    )


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _load_sources(specs: Sequence[SourceSpec]) -> list[tuple[str, str]]:
    loaded = []
    for spec in specs:
        if isinstance(spec, tuple):
            loaded.append(spec)
        else:
            path = Path(spec)
            loaded.append((str(path), path.read_text()))
    return loaded


def compile_batch(
    specs: Sequence[SourceSpec],
    options: BatchOptions = BatchOptions(),
    tracer: Optional[Tracer] = None,
) -> BatchReport:
    """Compile every source, cache-first, then in parallel.

    Results come back in input order whatever order workers finish in.
    A file that fails to compile is reported in its :class:`FileResult`
    (``error``) without aborting the rest of the batch.
    """
    tracer = tracer if tracer is not None else current_tracer()
    registry = current_registry()
    started = time.perf_counter()
    sources = _load_sources(specs)
    cache = options.cache

    results: list[Optional[FileResult]] = [None] * len(sources)
    pending: list[tuple[int, dict[str, Any], str]] = []
    for index, (name, source) in enumerate(sources):
        key = cache_key(
            source,
            options.config,
            entry=options.entry,
            profile_args=[list(options.args)],
            check_ir=options.check_ir,
        )
        entry = cache.get(key, tracer) if cache is not None else None
        if entry is not None:
            results[index] = _result_from_cache(name, key, entry)
            registry.inc("repro_batch_jobs_total", outcome="cached")
            continue
        task = {
            "name": name,
            "source": source,
            "config": options.config,
            "entry": options.entry,
            "args": tuple(options.args),
            "check_ir": options.check_ir,
            "check_bc": options.check_bc,
            "fail_fast": options.fail_fast,
        }
        pending.append((index, task, key))

    jobs = options.effective_jobs(len(pending)) if pending else 1
    # Peak queue depth for this batch (merged snapshots keep the max).
    registry.set_gauge("repro_batch_queue_depth", len(pending))
    if pending:
        if jobs == 1:
            payloads = [(i, k, _compile_worker(t)) for i, t, k in pending]
        else:
            payloads = []
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {
                    pool.submit(_compile_worker, task): (index, key)
                    for index, task, key in pending
                }
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in done:
                        index, key = futures[future]
                        payloads.append((index, key, future.result()))
        for index, key, payload in payloads:
            result = _result_from_worker(key, payload)
            if "metrics" in payload:
                registry.merge_snapshot(
                    MetricsSnapshot.from_json(payload["metrics"])
                )
            registry.inc(
                "repro_batch_jobs_total",
                outcome="error" if result.error is not None else "compiled",
            )
            registry.observe("repro_batch_job_seconds", result.elapsed)
            tracer.count("batch.worker")
            tracer.event(
                "batch.worker",
                path=result.name,
                key=key,
                pid=payload.get("pid"),
                elapsed=result.elapsed,
                ok=result.error is None,
            )
            if cache is not None and result.ok and result.report is not None:
                cache.put(
                    CacheEntry(
                        key=key,
                        manifest=result.manifest,
                        report=result.report,
                        program_blob=result.program_blob,
                        events=result.events,
                        counters=result.counters,
                    ),
                    tracer,
                )
            results[index] = result

    report = BatchReport(
        config=options.config.name,
        jobs=jobs if pending else 1,
        results=[r for r in results if r is not None],
        elapsed=time.perf_counter() - started,
        cache_stats=cache.stats.to_json() if cache is not None else None,
    )
    return report


__all__ = [
    "BatchOptions",
    "BatchReport",
    "FileResult",
    "SourceSpec",
    "compile_batch",
]
