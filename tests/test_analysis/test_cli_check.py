"""CLI tests for the ``repro check`` verb and the --check-ir flags."""

from __future__ import annotations

import pathlib

from repro.__main__ import main

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"
NQUEENS = EXAMPLES / "apps" / "nqueens.mini"


def test_check_single_file_each_phase(capsys):
    assert main(["check", str(NQUEENS), "--args", "5"]) == 0
    out = capsys.readouterr().out
    assert "check: 1 file(s), mode each-phase: ok" in out


def test_check_directory_recurses(capsys):
    assert main(["check", str(EXAMPLES), "--args", "4"]) == 0
    out = capsys.readouterr().out
    assert "check: 3 file(s)" in out


def test_check_boundaries_keep_going(capsys):
    code = main(
        ["check", str(NQUEENS), "--check-ir=boundaries", "--keep-going",
         "--args", "4"]
    )
    assert code == 0


def test_check_with_lir_and_dynamic_stamps(capsys):
    code = main(
        ["check", str(NQUEENS), "--lir", "--dynamic-stamps", "--args", "4"]
    )
    assert code == 0
    assert "ok" in capsys.readouterr().out


def test_check_fuzz(capsys):
    code = main(
        ["check", str(NQUEENS), "--args", "4", "--fuzz", "2", "--seed", "11"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "translation validation: ok" in out


def test_run_accepts_check_ir(capsys):
    code = main(
        ["run", str(NQUEENS), "--args", "5", "--check-ir=each-phase"]
    )
    assert code == 0
    assert "result" in capsys.readouterr().out


def test_compile_accepts_check_ir(capsys):
    code = main(
        ["compile", str(NQUEENS), "--check-ir=boundaries", "--keep-going"]
    )
    assert code == 0
