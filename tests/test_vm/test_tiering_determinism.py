"""Tiering determinism: promotion order and digests across processes.

Identical (source, seed, thresholds) must yield identical promotion
order, an identical ``tier.*`` event stream and identical final
bytecode digests — in two *fresh* interpreter processes, so any hidden
dependence on hash randomization, dict order or wall-clock leaks out
as a cross-process diff.  In-process re-runs are checked too (cheaper,
catches ordering bugs earlier).
"""

import json
import os
import subprocess
import sys
import pathlib

import pytest

from repro.analysis.progen import random_program
from repro.pipeline.compiler import compile_and_profile
from repro.pipeline.config import DBDS
from repro.vm import TieredVirtualMachine, TieringPolicy

REPO = pathlib.Path(__file__).parent.parent.parent
NQUEENS = REPO / "examples" / "apps" / "nqueens.mini"

#: the subprocess driver: compile, run tiered, print the controller
#: report (promotion order + stream digests) and the tier event stream
DRIVER = """
import json, sys
from repro.obs.tracer import Tracer, use_tracer
from repro.pipeline.compiler import compile_and_profile
from repro.pipeline.config import DBDS
from repro.vm import TieredVirtualMachine, TieringPolicy

source = sys.stdin.read()
threshold = int(sys.argv[1])
runs = int(sys.argv[2])
program, _ = compile_and_profile(source, "main", [[5]], DBDS)
tracer = Tracer()
with use_tracer(tracer):
    machine = TieredVirtualMachine(
        program, metered=True, policy=TieringPolicy(threshold=threshold)
    )
    for _ in range(runs):
        machine.reset()
        machine.run("main", [6])
report = machine.controller.report()
events = [
    {"name": e.name, "attrs": {k: v for k, v in e.attrs.items() if k != "seconds"}}
    for e in tracer.events
    if e.name.startswith("tier.")
]
print(json.dumps({"report": report, "events": events}, sort_keys=True))
"""


def run_fresh_process(source, threshold=8, runs=3):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    # Fresh random hash seed per process: determinism must not depend
    # on it.
    env.pop("PYTHONHASHSEED", None)
    proc = subprocess.run(
        [sys.executable, "-c", DRIVER, str(threshold), str(runs)],
        input=source, capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(proc.stdout)


def normalize(payload):
    # Compile seconds vary run to run; everything else must not.
    for promo in payload["report"]["promotions"]:
        promo.pop("seconds", None)
    return payload


def test_two_fresh_processes_agree():
    source = NQUEENS.read_text()
    first = normalize(run_fresh_process(source))
    second = normalize(run_fresh_process(source))
    assert first == second
    assert first["report"]["promotions"], "expected promotions to compare"
    assert any(e["name"] == "tier.promote" for e in first["events"])


@pytest.mark.parametrize("seed", [0, 7, 19])
def test_generated_programs_agree_across_processes(seed):
    source = random_program(seed)
    first = normalize(run_fresh_process(source, threshold=4, runs=2))
    second = normalize(run_fresh_process(source, threshold=4, runs=2))
    assert first == second


def test_in_process_reruns_agree():
    source = NQUEENS.read_text()
    program, _ = compile_and_profile(source, "main", [[5]], DBDS)

    def one_report():
        machine = TieredVirtualMachine(
            program, metered=True, policy=TieringPolicy(threshold=8)
        )
        for _ in range(3):
            machine.reset()
            machine.run("main", [6])
        return machine.controller.report()

    # Each machine translates its own baseline stream, so both start
    # cold even though they share the program object.
    assert one_report() == one_report()


def test_promotion_order_is_execution_order():
    source = NQUEENS.read_text()
    program, _ = compile_and_profile(source, "main", [[5]], DBDS)
    machine = TieredVirtualMachine(
        program, metered=True, policy=TieringPolicy(threshold=8)
    )
    machine.run("main", [6])
    order = [p["function"] for p in machine.controller.promotions]
    assert order == sorted(set(order), key=order.index)  # no duplicates
    # conflicts goes hot before place accumulates enough back edges:
    # the order is a semantic artifact of execution, stable by contract.
    machine2 = TieredVirtualMachine(
        program, metered=True, policy=TieringPolicy(threshold=8)
    )
    machine2.run("main", [6])
    assert [p["function"] for p in machine2.controller.promotions] == order
