"""Experiment M1 — code size measured where the paper measures it.

The paper's code-size metric is *machine code after installation*; at
that level duplicated blocks survive even when IR-level folding shrank
the node count (EXPERIMENTS.md divergence #2).  This bench recomputes
the Figure 5/6 code-size columns at the back end's emitted-bytes level
for the Java and Scala DaCapo suites.

Shape checks (the paper's Figure 5/6 code-size ordering):
* dupalot emits more bytes than DBDS (geomean);
* DBDS emits at least roughly as many bytes as the baseline.
"""

from _support import record_figure

from repro.backend import compile_to_machine, program_bytes
from repro.bench.stats import format_percent, geometric_mean
from repro.bench.workloads.suites import JAVA_DACAPO, SCALA_DACAPO, generate_suite
from repro.pipeline.compiler import compile_and_profile
from repro.pipeline.config import BASELINE, DBDS, DUPALOT


def _machine_bytes(workload, config) -> int:
    program, _ = compile_and_profile(
        workload.source, workload.entry, workload.profile_args, config
    )
    return program_bytes(compile_to_machine(program))


def _run():
    rows = []
    for profile in (JAVA_DACAPO, SCALA_DACAPO):
        for workload in generate_suite(profile):
            base = _machine_bytes(workload, BASELINE)
            dbds = _machine_bytes(workload, DBDS)
            dupalot = _machine_bytes(workload, DUPALOT)
            rows.append((f"{profile.suite}/{workload.name}", base, dbds, dupalot))
    return rows


def test_machine_code_size(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        "=== Machine-level code size (paper Figures 5/6, size columns) ===",
        f"{'workload':<26s}{'base B':>9s}{'dbds':>9s}{'dupalot':>9s}",
    ]
    dbds_ratios, dupalot_ratios = [], []
    for name, base, dbds, dupalot in rows:
        dbds_ratios.append(dbds / base)
        dupalot_ratios.append(dupalot / base)
        lines.append(
            f"{name:<26s}{base:>9d}{format_percent((dbds / base - 1) * 100):>9s}"
            f"{format_percent((dupalot / base - 1) * 100):>9s}"
        )
    dbds_mean = (geometric_mean(dbds_ratios) - 1) * 100
    dupalot_mean = (geometric_mean(dupalot_ratios) - 1) * 100
    lines.append(
        f"geomean size increase: dbds {format_percent(dbds_mean)}  "
        f"dupalot {format_percent(dupalot_mean)} "
        "(paper Fig 5: +15.9% / +38.2%, Fig 6: +6.9% / +26.3%)"
    )
    record_figure("machine_code_size", "\n".join(lines))
    assert dupalot_mean > dbds_mean, "dupalot must emit more machine code"
