"""Static lint over the closure engine's exec-generated source.

The closure engine (:mod:`repro.vm.closure`) compiles each function to
Python source and ``exec``\\s it.  That source is generated from data
that may have travelled through a cache file, so the verifier lints the
*text* (without executing it) for the properties the codegen promises:

* it parses, and consists only of module-level function definitions
  (the ``_blk_<pc>`` block closures plus the ``_drive`` trampoline);
* no **banned names** anywhere (``eval``, ``exec``, ``open``, ... —
  generated code has no business reaching them) and no name reads
  outside the closed set the compiler seeds: the fixed support
  namespace, the two whitelisted builtins, per-function ``_blk_*`` /
  ``_f<N>`` cells, parameters, and locals assigned in the function;
* **balanced accounting**: per block closure, the ``m[0] += K`` step
  increments sum to exactly the block's instruction count, and the
  ``m[1] += C`` cycle increments sum to the block's total baked cost;
* every ``raise EvaluationTrap(...)`` inside a block closure is
  preceded (in the same statement suite) by a ``state.steps = ...``
  meter flush, so traps can never escape with stale accounting.

:func:`lint_closure_source` returns plain message strings; the
``bc-codegen-lint`` checker turns them into report violations.
"""

from __future__ import annotations

import ast
import math
import re

from ...vm.closure import CLOSURE_BUILTINS, CLOSURE_NAMESPACE, generate_source

#: names generated code must never mention, in any position
BANNED_NAMES = frozenset(
    (
        "eval", "exec", "compile", "__import__", "open",
        "globals", "locals", "vars", "getattr", "setattr", "delattr",
        "input", "breakpoint", "__builtins__",
    )
)

_GENERATED_NAME = re.compile(r"\A(_blk_\d+|_f\d+)\Z")
_BLOCK_DEF = re.compile(r"\A_blk_(\d+)\Z")


def _literal(node) -> object:
    """The numeric value of an AST literal, or None if it isn't one."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
    ):
        return -node.operand.value
    return None


def _meter_increments(func: ast.FunctionDef, slot: int) -> list:
    """Values of every ``m[<slot>] += <literal>`` in the function."""
    found = []
    for node in ast.walk(func):
        if (
            isinstance(node, ast.AugAssign)
            and isinstance(node.op, ast.Add)
            and isinstance(node.target, ast.Subscript)
            and isinstance(node.target.value, ast.Name)
            and node.target.value.id == "m"
            and isinstance(node.target.slice, ast.Constant)
            and node.target.slice.value == slot
        ):
            found.append(_literal(node.value))
    return found


def _is_trap_raise(stmt) -> bool:
    return (
        isinstance(stmt, ast.Raise)
        and isinstance(stmt.exc, ast.Call)
        and isinstance(stmt.exc.func, ast.Name)
        and stmt.exc.func.id == "EvaluationTrap"
    )


def _is_steps_flush(stmt) -> bool:
    return (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Attribute)
        and stmt.targets[0].attr == "steps"
        and isinstance(stmt.targets[0].value, ast.Name)
        and stmt.targets[0].value.id == "state"
    )


def _statement_suites(func: ast.FunctionDef):
    """Every statement list in the function, nested suites included."""
    yield func.body
    for node in ast.walk(func):
        for attr in ("body", "orelse", "finalbody"):
            suite = getattr(node, attr, None)
            if node is not func and isinstance(suite, list) and suite:
                yield suite


def _lint_names(func: ast.FunctionDef, messages: list) -> None:
    params = {arg.arg for arg in func.args.args}
    assigned = {
        node.id
        for node in ast.walk(func)
        if isinstance(node, ast.Name)
        and isinstance(node.ctx, (ast.Store, ast.Del))
    }
    for node in ast.walk(func):
        if not isinstance(node, ast.Name):
            continue
        name = node.id
        if name in BANNED_NAMES:
            messages.append(
                f"{func.name}: banned name {name!r} in generated source"
            )
        elif isinstance(node.ctx, ast.Load) and not (
            name in params
            or name in assigned
            or name in CLOSURE_NAMESPACE
            or name in CLOSURE_BUILTINS
            or _GENERATED_NAME.match(name)
        ):
            messages.append(
                f"{func.name}: generated source reads unexpected "
                f"global {name!r}"
            )


def _lint_accounting(
    func: ast.FunctionDef,
    start: int,
    spans: dict,
    code: tuple,
    metered: bool,
    messages: list,
) -> None:
    count = spans.get(start)
    if count is None:
        messages.append(
            f"{func.name}: no block span starts at pc {start}"
        )
        return
    steps = _meter_increments(func, 0)
    if None in steps:
        messages.append(f"{func.name}: non-literal step increment")
        return
    if sum(steps) != count:
        messages.append(
            f"{func.name}: step increments sum to {sum(steps)} but the "
            f"block has {count} instruction(s)"
        )
    if metered:
        cycles = _meter_increments(func, 1)
        if None in cycles:
            messages.append(f"{func.name}: non-literal cycle increment")
            return
        expected = 0
        for pc in range(start, start + count):
            expected = expected + code[pc][1]
        total = sum(cycles)
        if total != expected and not math.isclose(
            total, expected, rel_tol=1e-12, abs_tol=1e-12
        ):
            messages.append(
                f"{func.name}: cycle increments sum to {total!r} but the "
                f"block's baked costs sum to {expected!r}"
            )


def _lint_trap_flushes(func: ast.FunctionDef, messages: list) -> None:
    for suite in _statement_suites(func):
        for position, stmt in enumerate(suite):
            if _is_trap_raise(stmt) and not any(
                _is_steps_flush(prior) for prior in suite[:position]
            ):
                messages.append(
                    f"{func.name}: EvaluationTrap raised without a "
                    f"preceding state.steps flush (line {stmt.lineno})"
                )


def lint_closure_source(fn, metered: bool = True) -> list[str]:
    """Lint the closure source for ``fn``; returns message strings."""
    messages: list[str] = []
    try:
        source = generate_source(fn, metered=metered)
    except Exception as exc:
        return [f"closure codegen failed: {type(exc).__name__}: {exc}"]
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [f"generated source does not parse: {exc}"]

    spans = {start: count for start, count, _name in fn.blocks}
    seen_blocks = set()
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            messages.append(
                f"unexpected module-level statement in generated source "
                f"(line {node.lineno})"
            )
            continue
        _lint_names(node, messages)
        match = _BLOCK_DEF.match(node.name)
        if match:
            start = int(match.group(1))
            seen_blocks.add(start)
            _lint_accounting(
                node, start, spans, fn.code, metered, messages
            )
            _lint_trap_flushes(node, messages)
        elif node.name != "_drive":
            messages.append(
                f"unexpected generated function {node.name!r}"
            )
    missing = sorted(set(spans) - seen_blocks)
    if missing:
        messages.append(
            f"no closure generated for block(s) at pc {missing}"
        )
    return messages


__all__ = ["BANNED_NAMES", "lint_closure_source"]
