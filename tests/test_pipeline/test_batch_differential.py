"""Differential batch test: parallel compiles must equal serial ones.

The determinism contract of :func:`repro.pipeline.batch.compile_batch`:
a ``ProcessPoolExecutor`` only changes *when* each unit is compiled,
never *what* comes out.  Every ``examples/`` program is compiled once
serially (``jobs=1``, inline, no pool) and once with ``jobs=4``; the
artifact manifests (optimized IR dump + DBDS decision list + size
numbers), serialized as canonical JSON, must be byte-identical, and the
rehydrated programs must behave identically under the interpreter.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.interp.interpreter import Interpreter, observable_outcome
from repro.pipeline.batch import BatchOptions, compile_batch

EXAMPLES = sorted(pathlib.Path("examples").rglob("*.mini"))

#: small profiling workload keeps the differential run fast; identical
#: on both sides so the profiles (and hence the artifacts) agree
PROFILE_ARGS = (4,)


def run_batch(jobs: int):
    options = BatchOptions(jobs=jobs, args=PROFILE_ARGS)
    return compile_batch(EXAMPLES, options)


@pytest.fixture(scope="module")
def serial_and_parallel():
    serial = run_batch(jobs=1)
    parallel = run_batch(jobs=4)
    assert serial.ok and parallel.ok
    return serial, parallel


def test_examples_exist():
    assert len(EXAMPLES) >= 3


def test_batches_cover_same_files_in_order(serial_and_parallel):
    serial, parallel = serial_and_parallel
    assert serial.jobs == 1 and parallel.jobs > 1
    assert [r.name for r in serial.results] == [r.name for r in parallel.results]
    assert len(serial.results) == len(EXAMPLES)


def test_manifests_are_byte_identical(serial_and_parallel):
    serial, parallel = serial_and_parallel
    for a, b in zip(serial.results, parallel.results):
        blob_a = json.dumps(a.manifest, sort_keys=True).encode("utf-8")
        blob_b = json.dumps(b.manifest, sort_keys=True).encode("utf-8")
        assert blob_a == blob_b, f"manifest drift in {a.name}"
        assert a.manifest["digest"] == b.manifest["digest"]


def test_dbds_decision_lists_identical(serial_and_parallel):
    serial, parallel = serial_and_parallel
    for a, b in zip(serial.results, parallel.results):
        decisions_a = a.manifest["decisions"]
        decisions_b = b.manifest["decisions"]
        assert decisions_a == decisions_b, f"decision drift in {a.name}"
        # The trace events agree with the manifest's decision list.
        from_events = [
            dict(sorted(e.attrs.items()))
            for e in a.events
            if e.name == "dbds.decision"
        ]
        assert from_events == decisions_a


def test_compiled_unit_metrics_identical(serial_and_parallel):
    serial, parallel = serial_and_parallel
    for a, b in zip(serial.results, parallel.results):
        units_a = [(u.function, u.code_size, u.duplications) for u in a.report.units]
        units_b = [(u.function, u.code_size, u.duplications) for u in b.report.units]
        assert units_a == units_b, f"unit drift in {a.name}"


def test_interpreter_outcomes_identical(serial_and_parallel):
    serial, parallel = serial_and_parallel
    for a, b in zip(serial.results, parallel.results):
        prog_a = a.program()
        prog_b = b.program()
        for n in (0, 1, 3, 5):
            interp_a = Interpreter(prog_a)
            interp_b = Interpreter(prog_b)
            out_a = observable_outcome(interp_a.run("main", [n]), interp_a.state)
            out_b = observable_outcome(interp_b.run("main", [n]), interp_b.state)
            assert out_a == out_b, f"outcome drift in {a.name} at n={n}"
