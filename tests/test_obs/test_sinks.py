"""Tests for JSONL trace serialization and schema validation."""

import json

import pytest

from repro.obs.sinks import (
    TraceSchemaError,
    event_from_dict,
    event_to_dict,
    read_jsonl,
    trace_counters,
    validate_record,
    validate_trace,
    validate_trace_file,
    write_jsonl,
)
from repro.obs.tracer import Event, Tracer


def make_tracer():
    tracer = Tracer()
    with tracer.span("phase", phase="canonicalize", graph="f") as span:
        span.attrs["nodes_delta"] = -2
        span.attrs["size_delta"] = -4.0
    tracer.event(
        "dbds.decision",
        graph="f", merge="b3", pred="b1",
        benefit=12.0, cost=3.0, probability=0.5,
        accepted=True, reason="accept",
    )
    tracer.count("dbds.duplications", 2)
    return tracer


class TestRoundTrip:
    def test_event_dict_round_trip(self):
        event = Event(name="x", kind="span", ts=1.5, dur=0.25, depth=2,
                      attrs={"a": [1, 2], "b": "s"})
        assert event_from_dict(event_to_dict(event)) == event

    def test_jsonl_round_trip(self, tmp_path):
        tracer = make_tracer()
        path = tmp_path / "trace.jsonl"
        written = write_jsonl(tracer, path)
        events = read_jsonl(path)
        assert written == len(events) == 3  # span + decision + counters
        assert events[0].name == "phase" and events[0].kind == "span"
        assert events[1].attrs["benefit"] == 12.0
        assert trace_counters(events) == {"dbds.duplications": 2}

    def test_bare_iterable_has_no_counter_trailer(self, tmp_path):
        tracer = make_tracer()
        path = tmp_path / "trace.jsonl"
        write_jsonl(list(tracer.events), path)
        assert trace_counters(read_jsonl(path)) == {}


class TestValidation:
    def test_valid_trace_passes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(make_tracer(), path)
        assert validate_trace_file(path) == 3

    def test_missing_name_rejected(self):
        assert any("name" in p for p in validate_record({"kind": "event", "ts": 0.0, "attrs": {}}))

    def test_span_needs_duration(self):
        record = {"name": "phase", "kind": "span", "ts": 0.0, "dur": None,
                  "attrs": {"phase": "gvn"}}
        assert any("dur" in p for p in validate_record(record))

    def test_decision_requires_tradeoff_fields(self):
        record = {"name": "dbds.decision", "kind": "event", "ts": 0.0,
                  "dur": None, "attrs": {"merge": "b1"}}
        problems = validate_record(record)
        assert any("benefit" in p for p in problems)
        assert any("probability" in p for p in problems)

    def test_validate_trace_raises_with_line_numbers(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = {"name": "e", "kind": "event", "ts": 0.0, "dur": None,
                "depth": 0, "attrs": {}}
        bad = {"kind": "span", "ts": 0.0, "attrs": {}}
        path.write_text(json.dumps(good) + "\n" + json.dumps(bad) + "\n")
        with pytest.raises(TraceSchemaError, match="record 2"):
            validate_trace_file(path)
