"""``repro.analysis`` — the pluggable static-analysis framework.

A decorator-registered checker registry over the IR, LIR and VM
bytecode (:mod:`~repro.analysis.core`, :mod:`~repro.analysis.checkers`,
:mod:`~repro.analysis.lir_checks`, :mod:`~repro.analysis.bcverify`),
per-phase invariant checking with phase-blame diagnostics
(:mod:`~repro.analysis.blame`, wired into ``Phase.run`` and the
``--check-ir`` pipeline modes), a translation-validation harness
(:mod:`~repro.analysis.validate`, behind ``repro check --fuzz``), and
the static bytecode verifier with its dataflow framework and artifact
corruption campaigns (``--check-bc``, ``repro check
--verify-bytecode``/``--fuzz-corruption``).  See ``docs/ANALYSIS.md``.

Typical use::

    from repro.analysis import run_checkers

    report = run_checkers(graph)          # keep-going: all violations
    for violation in report.errors():
        print(violation.format())

    from repro.analysis import PhaseGuard, use_guard

    with use_guard(PhaseGuard("each-phase")):
        DbdsPhase(program, config).run(graph)   # raises PhaseBlameError
"""

from .core import (
    CheckReport,
    Checker,
    CheckerContext,
    Severity,
    Violation,
    all_checkers,
    checker,
    get_checker,
    run_checkers,
    run_program_checkers,
)
from .checkers import (
    CORE_CHECKERS,
    STRUCTURAL_CHECKERS,
    check_stamp_dynamic,
    stamp_admits,
)
from .lir_checks import LirCheckerContext, run_lir_checkers
from .blame import (
    CHECK_BOUNDARIES,
    CHECK_EACH_PHASE,
    CHECK_MODES,
    CHECK_OFF,
    PhaseBlameError,
    PhaseGuard,
    current_guard,
    use_guard,
)
from .validate import (
    DivergenceRecord,
    FuzzReport,
    ValidationResult,
    fuzz_engines,
    fuzz_mutations,
    fuzz_translation,
    validate_engines,
    validate_translation,
)
from .progen import (
    MUTATION_KINDS,
    MutatedProgram,
    ProgramGenerator,
    SourceMutator,
    mutated_program,
    random_program,
)
from .bcverify import (
    BcVerifyReport,
    BytecodeVerificationError,
    CorruptionReport,
    corruption_campaign,
    run_bc_checkers,
    verify_artifact,
    verify_bytecode,
)

__all__ = [
    "CHECK_BOUNDARIES",
    "CHECK_EACH_PHASE",
    "CHECK_MODES",
    "CHECK_OFF",
    "CORE_CHECKERS",
    "BcVerifyReport",
    "BytecodeVerificationError",
    "CheckReport",
    "Checker",
    "CheckerContext",
    "CorruptionReport",
    "DivergenceRecord",
    "FuzzReport",
    "LirCheckerContext",
    "MUTATION_KINDS",
    "MutatedProgram",
    "PhaseBlameError",
    "PhaseGuard",
    "ProgramGenerator",
    "STRUCTURAL_CHECKERS",
    "Severity",
    "SourceMutator",
    "ValidationResult",
    "Violation",
    "all_checkers",
    "check_stamp_dynamic",
    "checker",
    "corruption_campaign",
    "current_guard",
    "fuzz_engines",
    "fuzz_mutations",
    "fuzz_translation",
    "get_checker",
    "mutated_program",
    "random_program",
    "run_bc_checkers",
    "run_checkers",
    "run_lir_checkers",
    "run_program_checkers",
    "stamp_admits",
    "use_guard",
    "validate_engines",
    "validate_translation",
    "verify_artifact",
    "verify_bytecode",
]
