"""DBDS — Dominance-Based Duplication Simulation.

A complete, self-contained reproduction of *"Dominance-Based Duplication
Simulation (DBDS): Code Duplication to Enable Compiler Optimizations"*
(Leopoldseder et al., CGO 2018): an SSA compiler for a small imperative
language, the duplication simulation optimization with its trade-off
cost model, the baselines it is evaluated against, and the benchmark
harness regenerating the paper's evaluation figures.

Quick start::

    from repro import compile_and_profile, measure_performance, DBDS

    program, report = compile_and_profile(source, "main", [[10]], DBDS)
    cycles, _ = measure_performance(program, "main", [[10]])

See README.md for the language reference and architecture overview.
"""

from .analysis import (
    CheckReport,
    PhaseBlameError,
    PhaseGuard,
    Severity,
    SourceMutator,
    Violation,
    all_checkers,
    checker,
    fuzz_mutations,
    fuzz_translation,
    run_checkers,
    run_lir_checkers,
    run_program_checkers,
    use_guard,
    validate_translation,
)
from .dbds.duplicate import DuplicationError, can_duplicate, duplicate_into
from .dbds.phase import DbdsConfig, DbdsPhase, DbdsStats
from .dbds.simulation import SimulationResult, SimulationTier
from .dbds.tradeoff import TradeOffConfig, should_duplicate, sort_candidates
from .frontend.irbuilder import build_program, compile_source
from .frontend.lexer import CompileError
from .frontend.parser import parse_module
from .interp.interpreter import (
    ExecutionResult,
    HeapArray,
    HeapObject,
    Interpreter,
    observable_outcome,
)
from .interp.profile import apply_profile, profile_program
from .ir import Graph, Program, verify_graph, verify_program
from .obs import (
    CompileProfile,
    Tracer,
    current_tracer,
    read_jsonl,
    use_tracer,
    write_jsonl,
)
from .pipeline.batch import (
    BatchOptions,
    BatchReport,
    FileResult,
    compile_batch,
)
from .pipeline.cache import (
    ArtifactCache,
    CacheEntry,
    CacheStats,
    artifact_manifest,
    cache_key,
    config_fingerprint,
    make_entry,
)
from .pipeline.compiler import (
    CompilationReport,
    Compiler,
    UnitMetrics,
    compile_and_profile,
    measure_performance,
)
from .pipeline.config import (
    BACKTRACKING,
    BASELINE,
    CONFIGURATIONS,
    DBDS,
    DUPALOT,
    CompilerConfig,
)

__version__ = "1.0.0"

__all__ = [
    "all_checkers", "apply_profile", "ArtifactCache", "BACKTRACKING",
    "BASELINE", "BatchOptions", "BatchReport", "build_program",
    "cache_key", "can_duplicate", "checker", "CheckReport",
    "CacheEntry", "CacheStats", "CompilationReport",
    "compile_and_profile", "compile_batch", "CompileError",
    "compile_source", "CompileProfile", "Compiler", "CompilerConfig",
    "CONFIGURATIONS", "config_fingerprint", "current_tracer", "DBDS",
    "DbdsConfig", "DbdsPhase", "DbdsStats", "DUPALOT",
    "duplicate_into", "DuplicationError", "ExecutionResult",
    "FileResult", "fuzz_mutations", "fuzz_translation", "Graph",
    "HeapArray", "HeapObject", "Interpreter", "make_entry",
    "artifact_manifest", "measure_performance", "observable_outcome",
    "parse_module", "PhaseBlameError", "PhaseGuard", "profile_program",
    "Program", "read_jsonl", "run_checkers", "run_lir_checkers",
    "run_program_checkers", "Severity", "should_duplicate",
    "SimulationResult", "SimulationTier", "sort_candidates",
    "SourceMutator", "TradeOffConfig", "Tracer", "UnitMetrics",
    "use_guard", "use_tracer", "validate_translation", "verify_graph",
    "verify_program", "Violation", "write_jsonl",
]
