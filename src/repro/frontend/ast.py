"""Abstract syntax tree for MiniLang.

Plain dataclasses; every node records its source line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir.types import Type


@dataclass
class Node:
    line: int


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class Expr(Node):
    pass


@dataclass
class IntLiteral(Expr):
    value: int


@dataclass
class BoolLiteral(Expr):
    value: bool


@dataclass
class NullLiteral(Expr):
    pass


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class Unary(Expr):
    op: str  # "-" or "!"
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # arithmetic / comparison / logical operator text
    left: Expr
    right: Expr


@dataclass
class FieldAccess(Expr):
    obj: Expr
    field: str


@dataclass
class Index(Expr):
    array: Expr
    index: Expr


@dataclass
class CallExpr(Expr):
    callee: str
    args: list[Expr]


@dataclass
class NewObject(Expr):
    class_name: str
    #: (field-name, initializer) pairs, e.g. ``new A { x = 0 }``.
    initializers: list[tuple[str, Expr]] = field(default_factory=list)


@dataclass
class NewArrayExpr(Expr):
    element_type: Type
    length: Expr


@dataclass
class LenExpr(Expr):
    array: Expr


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Stmt(Node):
    pass


@dataclass
class VarDecl(Stmt):
    name: str
    declared_type: Type
    init: Optional[Expr]


@dataclass
class Assign(Stmt):
    target: Expr  # VarRef, FieldAccess or Index
    value: Expr


@dataclass
class IfStmt(Stmt):
    condition: Expr
    then_body: list[Stmt]
    else_body: list[Stmt]


@dataclass
class WhileStmt(Stmt):
    condition: Expr
    body: list[Stmt]


@dataclass
class ForStmt(Stmt):
    """``for (init; cond; step) body`` — sugar for init + while."""

    init: Stmt  # VarDecl or Assign
    condition: Expr
    step: "Assign"
    body: list[Stmt]


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr]


@dataclass
class ExprStmt(Stmt):
    expr: Expr


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
@dataclass
class ClassDef(Node):
    name: str
    fields: list[tuple[str, Type]]


@dataclass
class GlobalDef(Node):
    name: str
    declared_type: Type


@dataclass
class FunctionDef(Node):
    name: str
    params: list[tuple[str, Type]]
    return_type: Type
    body: list[Stmt]


@dataclass
class Module(Node):
    classes: list[ClassDef]
    globals: list[GlobalDef]
    functions: list[FunctionDef]
