"""Tests for AST → SSA lowering and type checking."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.frontend.lexer import CompileError
from repro.ir import (
    Goto,
    If,
    LoadGlobal,
    New,
    Phi,
    Return,
    StoreField,
    StoreGlobal,
    verify_graph,
    verify_program,
)


class TestBasicLowering:
    def test_every_function_verifies(self):
        program = compile_source(
            """
class A { x: int; }
global g: int;
fn f1(a: A, i: int) -> int { if (i > 0) { return a.x; } return i; }
fn f2(n: int) -> int { var s: int = 0; var i: int = 0;
  while (i < n) { s = s + i; i = i + 1; } return s; }
fn f3() { g = 1; }
"""
        )
        verify_program(program)

    def test_if_merge_creates_phi(self):
        program = compile_source(
            "fn f(x: int) -> int { var p: int; if (x > 0) { p = x; } else { p = 0; } return p; }"
        )
        graph = program.function("f")
        phis = [phi for b in graph.blocks for phi in b.phis]
        assert len(phis) == 1
        assert len(phis[0].inputs) == 2

    def test_unchanged_variable_needs_no_phi(self):
        program = compile_source(
            "fn f(x: int) -> int { var k: int = 7; if (x > 0) { x = 1; } else { x = 2; } return k + x; }"
        )
        graph = program.function("f")
        phis = [phi for b in graph.blocks for phi in b.phis]
        assert len(phis) == 1  # only x, not k

    def test_branch_with_return_no_merge_phi(self):
        program = compile_source(
            "fn f(x: int) -> int { if (x > 0) { return 1; } x = x + 1; return x; }"
        )
        graph = program.function("f")
        assert all(not b.phis for b in graph.blocks)

    def test_loop_header_phis(self):
        program = compile_source(
            "fn f(n: int) -> int { var i: int = 0; while (i < n) { i = i + 1; } return i; }"
        )
        graph = program.function("f")
        headers = [b for b in graph.blocks if b.phis]
        assert len(headers) == 1
        assert len(headers[0].predecessors) == 2

    def test_short_circuit_and(self):
        program = compile_source(
            "fn f(a: bool, b: bool) -> bool { return a && b; }"
        )
        graph = program.function("f")
        branches = [b for b in graph.blocks if isinstance(b.terminator, If)]
        assert len(branches) == 1

    def test_critical_edges_split_by_construction(self):
        program = compile_source(
            """
fn f(x: int) -> int {
  var p: int = 0;
  if (x > 0) { if (x > 10) { p = 1; } } else { p = 2; }
  return p;
}
"""
        )
        verify_graph(program.function("f"))  # includes critical-edge check

    def test_globals_load_store(self):
        program = compile_source(
            "global g: int;\nfn f(x: int) -> int { g = x; return g; }"
        )
        graph = program.function("f")
        instrs = [i for b in graph.blocks for i in b.instructions]
        assert any(isinstance(i, StoreGlobal) for i in instrs)
        assert any(isinstance(i, LoadGlobal) for i in instrs)

    def test_new_with_initializers_lowers_to_stores(self):
        program = compile_source(
            "class P { a: int; b: int; }\nfn f() -> int { var p: P = new P { a = 1, b = 2 }; return p.a; }"
        )
        graph = program.function("f")
        instrs = [i for b in graph.blocks for i in b.instructions]
        assert sum(isinstance(i, New) for i in instrs) == 1
        assert sum(isinstance(i, StoreField) for i in instrs) == 2

    def test_void_function_gets_implicit_return(self):
        program = compile_source("global g: int;\nfn f() { g = 1; }")
        graph = program.function("f")
        returns = [b for b in graph.blocks if isinstance(b.terminator, Return)]
        assert len(returns) == 1

    def test_negative_literal_folds_to_constant(self):
        program = compile_source("fn f() -> int { return -5; }")
        graph = program.function("f")
        assert graph.entry.instructions == []  # no Neg emitted


class TestWhileEdgeCases:
    def test_body_always_returns(self):
        program = compile_source(
            """
fn f(n: int) -> int {
  while (n > 0) { return n; }
  return 0;
}
"""
        )
        verify_graph(program.function("f"))

    def test_nested_loops_verify(self):
        program = compile_source(
            """
fn f(n: int) -> int {
  var t: int = 0; var i: int = 0;
  while (i < n) {
    var j: int = 0;
    while (j < i) { t = t + 1; j = j + 1; }
    i = i + 1;
  }
  return t;
}
"""
        )
        verify_graph(program.function("f"))

    def test_loop_var_scoping(self):
        with pytest.raises(CompileError, match="undefined variable"):
            compile_source(
                "fn f(n: int) -> int { while (n > 0) { var t: int = 1; n = n - 1; } return t; }"
            )


class TestTypeErrors:
    @pytest.mark.parametrize(
        "source,message",
        [
            ("fn f() -> int { return true; }", "cannot assign"),
            ("fn f() -> int { var x: bool = 1; return 0; }", "cannot assign"),
            ("fn f() { if (1) { } }", "must be bool"),
            ("fn f() { while (1) { } }", "must be bool"),
            ("fn f() -> int { return 1 + true; }", "needs int"),
            ("fn f() -> bool { return !1; }", "needs bool"),
            ("fn f() -> int { return -true; }", "needs int"),
            ("fn f() -> bool { return 1 && true; }", "needs bool"),
            ("fn f() -> bool { return true < false; }", "needs int"),
            ("fn f(x: int) -> int { return x.f; }", "non-object"),
            ("class A { x: int; }\nfn f(a: A) -> int { return a.y; }", "no field"),
            ("fn f() -> int { return g(); }", "undefined function"),
            ("fn g() {}\nfn f() { g(1); }", "expects 0 arguments"),
            ("fn f() -> int { return y; }", "undefined variable"),
            ("fn f() { y = 1; }", "undefined variable"),
            ("fn f() -> int { var x: int = 1; var x: int = 2; return x; }", "already defined"),
            ("fn f(x: int, x: int) -> int { return x; }", "duplicate parameter"),
            ("fn f() -> int { }", "without returning"),
            ("fn f() -> int { return 1; return 2; }", "unreachable"),
            ("fn f() { return 1; }", "void function returns"),
            ("fn f() -> int { return; }", "missing return value"),
            ("fn f(a: B) {}", "unknown class"),
            ("fn f() -> int { return new B; }", "unknown class"),
            ("class A { x: int; }\nfn f() -> A { return new A { y = 1 }; }", "no field"),
            ("class A { x: int; }\nfn f() -> A { return new A { x = 1, x = 2 }; }", "twice"),
            ("fn f(x: int) -> int { return x[0]; }", "non-array"),
            ("fn f(xs: int[]) -> int { return xs[true]; }", "must be int"),
            ("fn f() -> int { return len(3); }", "non-array"),
            ("fn f() -> int { return new int[true]; }", "must be int"),
            ("fn g() {}\nfn f() -> int { return g() + 1; }", "void value"),
            ("class A { x: int; }\nfn f(a: A) -> bool { return a == 1; }", "cannot compare"),
            ("fn f() {}\nfn f() {}", "duplicate function"),
            ("global g: int;\nglobal g: int;", "duplicate global"),
        ],
    )
    def test_rejected(self, source, message):
        with pytest.raises(CompileError, match=message):
            compile_source(source)

    def test_null_comparison_allowed(self):
        program = compile_source(
            "class A { x: int; }\nfn f(a: A) -> bool { return a == null; }"
        )
        verify_program(program)

    def test_null_assignment_allowed(self):
        program = compile_source(
            "class A { x: int; }\nfn f() -> A { var a: A = null; return a; }"
        )
        verify_program(program)
