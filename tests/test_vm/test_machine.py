"""VM semantics: exact parity with the reference interpreter.

Every behaviour the reference interpreter exhibits — values, trap
messages, step counts, metered cycles, budget timing, profile hooks,
observer callbacks — must be reproduced bit-for-bit by the VM.
"""

import pytest

from repro.costmodel.model import cycles_of
from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import (
    BudgetExceeded,
    Interpreter,
    ProfileCollector,
    observable_outcome,
)
from repro.pipeline.compiler import compile_and_profile
from repro.pipeline.config import DBDS
from repro.vm import VirtualMachine, translate_program

APPS = {
    "nqueens": ("examples/apps/nqueens.mini", [6]),
    "wordfreq": ("examples/apps/wordfreq.mini", [120]),
    "matrix": ("examples/apps/matrix.mini", [8]),
}


def engines_for(source: str, metered: bool = False, **vm_kwargs):
    program = compile_source(source)
    reference = Interpreter(
        program,
        cycle_cost=cycles_of if metered else None,
        terminator_cost=cycles_of if metered else None,
        **vm_kwargs,
    )
    vm = VirtualMachine(
        translate_program(program), metered=metered, **vm_kwargs
    )
    return reference, vm


def both(source: str, args, metered: bool = False):
    reference, vm = engines_for(source, metered=metered)
    ref = reference.run("main", list(args))
    out = vm.run("main", list(args))
    return (reference, ref), (vm, out)


def assert_parity(source: str, args, metered: bool = False):
    (reference, ref), (vm, out) = both(source, args, metered=metered)
    assert observable_outcome(ref, reference.state) == observable_outcome(
        out, vm.state
    )
    assert ref.steps == out.steps
    if metered:
        assert ref.cycles == out.cycles
    return ref, out


# ----------------------------------------------------------------------
# Values, steps, cycles
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(APPS))
def test_apps_value_step_cycle_parity(name):
    path, args = APPS[name]
    assert_parity(open(path).read(), args, metered=True)


def test_parity_on_optimized_program():
    source = open("examples/apps/nqueens.mini").read()
    program, _ = compile_and_profile(source, "main", [[5]], DBDS)
    reference = Interpreter(
        program, cycle_cost=cycles_of, terminator_cost=cycles_of
    )
    vm = VirtualMachine(translate_program(program), metered=True)
    ref = reference.run("main", [7])
    out = vm.run("main", [7])
    assert (ref.value, ref.steps, ref.cycles) == (out.value, out.steps, out.cycles)


def test_wrapping_arithmetic_and_division():
    source = """
    fn main(x: int) -> int {
      var big: int = 4611686018427387904;
      var wrapped: int = big * 4 + x;
      var q: int = (0 - 7) / 2;
      var r: int = (0 - 7) % 2;
      var sh: int = 1 << 70;
      return wrapped + q * 100 + r * 10 + sh;
    }
    """
    ref, out = assert_parity(source, [5])
    assert ref.value == out.value


# ----------------------------------------------------------------------
# Traps: identical messages at identical step counts
# ----------------------------------------------------------------------
TRAP_SOURCES = {
    "division by zero": "fn main(x: int) -> int { return 1 / x; }",
    "modulo by zero": "fn main(x: int) -> int { return 1 % x; }",
    "negative array length": """
        fn main(x: int) -> int {
          var a: int[] = new int[0 - 3];
          return len(a);
        }
    """,
    "array index": """
        fn main(x: int) -> int {
          var a: int[] = new int[2];
          return a[x + 5];
        }
    """,
}


@pytest.mark.parametrize("label", sorted(TRAP_SOURCES))
def test_trap_message_and_step_parity(label):
    (reference, ref), (vm, out) = both(TRAP_SOURCES[label], [0], metered=True)
    assert ref.trap is not None and label in ref.trap
    assert ref.trap == out.trap
    assert ref.steps == out.steps
    assert ref.cycles == out.cycles


def test_null_field_trap_messages():
    source = """
    class P { x: int; }
    fn main(n: int) -> int {
      var p: P = null;
      if (n > 0) { p.x = 1; } else { return p.x; }
      return 0;
    }
    """
    for args in ([0], [1]):
        (reference, ref), (vm, out) = both(source, args)
        assert ref.trap == out.trap
        assert "null dereference" in out.trap


def test_stack_overflow_parity():
    source = "fn main(x: int) -> int { return main(x + 1); }"
    (reference, ref), (vm, out) = both(source, [0])
    assert ref.trap == out.trap == "stack overflow"
    assert ref.steps == out.steps


# ----------------------------------------------------------------------
# Step budget: checked BEFORE executing, identical timing
# ----------------------------------------------------------------------
LOOP = """
fn main(n: int) -> int {
  var i: int = 0;
  while (i < 1000000) { i = i + 1; }
  return i;
}
"""


def test_budget_exceeded_matches_reference():
    program = compile_source(LOOP)
    reference = Interpreter(program, max_steps=500)
    vm = VirtualMachine(translate_program(program), max_steps=500)
    with pytest.raises(BudgetExceeded) as ref_exc:
        reference.run("main", [0])
    with pytest.raises(BudgetExceeded) as vm_exc:
        vm.run("main", [0])
    assert str(ref_exc.value) == str(vm_exc.value) == "exceeded 500 interpreter steps"
    assert reference.state.steps == vm.state.steps


def test_budget_not_hit_just_below_threshold():
    program = compile_source(LOOP)
    reference = Interpreter(program)
    steps = reference.run("main", [0]).steps
    vm = VirtualMachine(translate_program(program), max_steps=steps)
    assert vm.run("main", [0]).value == 1000000


# ----------------------------------------------------------------------
# Globals, reset, call protocol
# ----------------------------------------------------------------------
def test_globals_survive_within_run_and_reset_between():
    source = """
    global total: int;
    fn bump(v: int) -> int { total = total + v; return total; }
    fn main(x: int) -> int { bump(x); bump(x); return total; }
    """
    reference, vm = engines_for(source)
    assert vm.run("main", [5]).value == reference.run("main", [5]).value == 10
    vm.reset()
    reference.reset()
    assert vm.run("main", [3]).value == reference.run("main", [3]).value == 6


def test_arity_mismatch_raises_typeerror_like_reference():
    source = "fn main(x: int) -> int { return x; }"
    reference, vm = engines_for(source)
    with pytest.raises(TypeError) as ref_exc:
        reference.run("main", [1, 2])
    with pytest.raises(TypeError) as vm_exc:
        vm.run("main", [1, 2])
    assert str(ref_exc.value) == str(vm_exc.value)


def test_unknown_entry_raises_keyerror():
    reference, vm = engines_for("fn main(x: int) -> int { return x; }")
    with pytest.raises(KeyError):
        vm.run("nope", [1])


# ----------------------------------------------------------------------
# Profile hooks
# ----------------------------------------------------------------------
BRANCHY = """
fn main(n: int) -> int {
  var i: int = 0;
  var odd: int = 0;
  while (i < n) {
    if (i % 2 == 1) { odd = odd + 1; }
    i = i + 1;
  }
  return odd;
}
"""


def test_profile_collectors_record_identically():
    program = compile_source(BRANCHY)
    ref_profile, vm_profile = ProfileCollector(), ProfileCollector()
    Interpreter(program, profile=ref_profile).run("main", [9])
    VirtualMachine(translate_program(program), profile=vm_profile).run("main", [9])
    assert ref_profile.block_counts == vm_profile.block_counts
    assert ref_profile.branch_counts == vm_profile.branch_counts


# ----------------------------------------------------------------------
# Observer hook
# ----------------------------------------------------------------------
def test_observer_sees_same_instruction_value_sequence():
    program = compile_source(BRANCHY)
    seen_ref, seen_vm = [], []
    Interpreter(program, observer=lambda i, v: seen_ref.append((i, v))).run(
        "main", [7]
    )
    VirtualMachine(
        translate_program(program), observer=lambda i, v: seen_vm.append((i, v))
    ).run("main", [7])
    assert seen_ref == seen_vm


def test_observer_fires_for_self_move_phis():
    # A loop-carried phi whose value does not change still produces an
    # observation per iteration, even though the move is dropped.
    source = """
    fn main(n: int) -> int {
      var keep: int = 42;
      var i: int = 0;
      while (i < n) { i = i + 1; }
      return keep + i;
    }
    """
    program = compile_source(source)
    seen_ref, seen_vm = [], []
    Interpreter(program, observer=lambda i, v: seen_ref.append((i, v))).run(
        "main", [4]
    )
    VirtualMachine(
        translate_program(program), observer=lambda i, v: seen_vm.append((i, v))
    ).run("main", [4])
    assert seen_ref == seen_vm
