"""Tests for machine-level code-size estimation."""

import pytest

from repro.backend import compile_to_machine, function_bytes, program_bytes
from repro.backend.codesize import instruction_bytes
from repro.backend.lir import (
    Immediate,
    LirBinOp,
    LirMove,
    LirReturn,
    PReg,
    StackSlot,
)
from repro.backend.lowering import lower_program
from repro.backend.regalloc import allocate_program
from repro.frontend.irbuilder import compile_source
from repro.ir.ops import BinOp


class TestInstructionBytes:
    def test_register_operands_are_base_size(self):
        mov = LirMove(PReg(0), PReg(1))
        assert instruction_bytes(mov) == 2

    def test_immediates_cost_extra(self):
        small = LirMove(PReg(0), Immediate(5))
        assert instruction_bytes(small) == 4
        large = LirMove(PReg(0), Immediate(1 << 40))
        assert instruction_bytes(large) == 8

    def test_stack_slots_cost_extra(self):
        spilled = LirBinOp(BinOp.ADD, StackSlot(0), PReg(1), StackSlot(2))
        plain = LirBinOp(BinOp.ADD, PReg(0), PReg(1), PReg(2))
        assert instruction_bytes(spilled) > instruction_bytes(plain)

    def test_return_is_small(self):
        assert instruction_bytes(LirReturn(None)) == 1


class TestProgramBytes:
    SOURCE = """
fn helper(a: int) -> int { return a * 3; }
fn main(n: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < n) { s = s + helper(i); i = i + 1; }
  return s;
}
"""

    def test_program_is_sum_of_functions(self):
        program = compile_source(self.SOURCE)
        lir = compile_to_machine(program)
        assert program_bytes(lir) == sum(
            function_bytes(fn) for fn in lir.functions.values()
        )

    def test_more_code_more_bytes(self):
        small = compile_to_machine(
            compile_source("fn main(n: int) -> int { return n; }")
        )
        large = compile_to_machine(compile_source(self.SOURCE))
        assert program_bytes(large) > program_bytes(small)

    def test_register_pressure_increases_size(self):
        program_text = """
fn f(a: int, b: int, c: int, d: int) -> int {
  var e: int = a + b;
  var g: int = c + d;
  var h: int = a * c;
  var i: int = b * d;
  return (e + g) * (h + i) + e * h + g * i;
}
"""
        plenty = lower_program(compile_source(program_text))
        allocate_program(plenty, 16)
        starved = lower_program(compile_source(program_text))
        allocate_program(starved, 2)
        assert program_bytes(starved) > program_bytes(plenty)

    def test_duplication_increases_machine_size(self):
        """The machine-level view of the paper's code-size metric: tail
        duplication grows installed code even when the IR-level estimate
        shrinks (EXPERIMENTS.md divergence #2)."""
        from repro.pipeline.compiler import compile_and_profile
        from repro.pipeline.config import BASELINE, DUPALOT

        source = """
fn f(x: int, w: int) -> int {
  var p: int;
  if (x > 5) { p = x; } else { p = 1; }
  w = (w ^ (w >> 3)) + 11;
  w = (w | (w >> 5)) + 13;
  w = (w + (w >> 2)) + 17;
  return p * 3 + w;
}
fn main(n: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < n) { s = s + f(i, s); i = i + 1; }
  return s;
}
"""
        base_program, _ = compile_and_profile(source, "main", [[12]], BASELINE)
        dup_program, _ = compile_and_profile(source, "main", [[12]], DUPALOT)
        base_bytes = program_bytes(compile_to_machine(base_program))
        dup_bytes = program_bytes(compile_to_machine(dup_program))
        assert dup_bytes > base_bytes
