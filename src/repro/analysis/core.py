"""The checker framework: registry, context, runner.

A *checker* is a named invariant-checking function over one function
graph (or one LIR function).  Checkers register themselves with the
:func:`checker` decorator, carry a default severity and a scope
(``"ir"`` or ``"lir"``), and report through a :class:`CheckerContext`
that caches the expensive derived structures (dominators, loops,
frequencies) so a full suite costs one analysis pass, not one per
checker.

Two consumption styles:

* ``run_checkers(graph, fail_fast=True)`` — verifier style, stop at the
  first error (what :mod:`repro.ir.verifier` is a shim over);
* ``run_checkers(graph, fail_fast=False)`` — CI style, collect every
  violation of every checker in one pass (``repro check --keep-going``).

Per-checker wall time and violation counts are tallied on the ambient
tracer (``analysis.checker.<name>.us`` / ``.violations``) so
``--profile-compile`` shows what the checking itself costs.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..ir.cfgutils import reachable_blocks
from ..ir.dominators import DominatorTree
from ..ir.frequency import BlockFrequencies
from ..ir.graph import Graph
from ..ir.loops import LoopForest
from ..obs.metrics import current_registry
from ..obs.tracer import current_tracer

SCOPE_IR = "ir"
SCOPE_LIR = "lir"
SCOPE_BC = "bc"


class Severity(enum.Enum):
    """How bad a violation is.

    ``ERROR`` violations make a graph invalid (the pipeline must not
    continue); ``WARNING`` violations flag suspicious-but-legal state
    and never fail a check run.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Violation:
    """One broken invariant, attributed to the checker that found it."""

    checker: str
    severity: Severity
    graph: str
    message: str
    #: name of the block the violation anchors to (None = graph-level)
    block: Optional[str] = None

    def format(self) -> str:
        where = f"{self.graph}/{self.block}" if self.block else self.graph
        return f"{self.severity.value}[{self.checker}] {where}: {self.message}"


@dataclass(frozen=True)
class Checker:
    """A registered invariant checker."""

    name: str
    func: Callable
    severity: Severity = Severity.ERROR
    scope: str = SCOPE_IR
    description: str = ""


#: registration-ordered checker table; order is the run order and the
#: shim's fail-fast order, so structural checkers must register first.
_REGISTRY: dict[str, Checker] = {}


def checker(
    name: str,
    *,
    scope: str = SCOPE_IR,
    severity: Severity = Severity.ERROR,
    description: str = "",
):
    """Class-level decorator registering a checker function.

    The decorated function receives a :class:`CheckerContext` (IR
    scope) or :class:`LirCheckerContext` (LIR scope) and reports
    violations via ``ctx.report``.
    """

    def register(func: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"duplicate checker {name!r}")
        _REGISTRY[name] = Checker(
            name=name,
            func=func,
            severity=severity,
            scope=scope,
            description=description or (func.__doc__ or "").strip().split("\n")[0],
        )
        return func

    return register


def all_checkers(scope: Optional[str] = None) -> list[Checker]:
    """Registered checkers in run order, optionally filtered by scope."""
    return [
        c for c in _REGISTRY.values() if scope is None or c.scope == scope
    ]


def get_checker(name: str) -> Checker:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown checker {name!r} (known: {known})") from None


class _StopCheck(Exception):
    """Internal control flow: a fail-fast run hit an error."""


class _ContextBase:
    """Violation collection shared by the IR and LIR contexts."""

    def __init__(self, graph_name: str) -> None:
        self.graph_name = graph_name
        self.violations: list[Violation] = []
        self.fail_fast = False
        self._checker: Optional[Checker] = None

    def report(
        self,
        message: str,
        *,
        block=None,
        severity: Optional[Severity] = None,
    ) -> None:
        """Record a violation attributed to the running checker."""
        assert self._checker is not None, "report() outside a checker run"
        sev = severity or self._checker.severity
        self.violations.append(
            Violation(
                checker=self._checker.name,
                severity=sev,
                graph=self.graph_name,
                message=message,
                block=getattr(block, "name", block),
            )
        )
        if self.fail_fast and sev is Severity.ERROR:
            raise _StopCheck


class CheckerContext(_ContextBase):
    """One IR check run: the graph plus lazily cached analyses."""

    def __init__(self, graph: Graph, program=None) -> None:
        super().__init__(graph.name)
        self.graph = graph
        self.program = program
        self._dom: Optional[DominatorTree] = None
        self._loops: Optional[LoopForest] = None
        self._frequencies: Optional[BlockFrequencies] = None
        self._reachable = None

    # Checkers deliberately bypass Graph's analysis cache: a sanitizer
    # must recompute from the raw CFG, since the very thing it validates
    # may be a mutation that failed to invalidate the cache.
    @property
    def dom(self) -> DominatorTree:
        if self._dom is None:
            self._dom = DominatorTree(self.graph)
        return self._dom

    @property
    def loops(self) -> LoopForest:
        if self._loops is None:
            self._loops = LoopForest(self.graph, self.dom)
        return self._loops

    @property
    def frequencies(self) -> BlockFrequencies:
        if self._frequencies is None:
            self._frequencies = BlockFrequencies(self.graph, self.loops)
        return self._frequencies

    @property
    def reachable(self) -> set:
        if self._reachable is None:
            self._reachable = reachable_blocks(self.graph)
        return self._reachable


@dataclass
class CheckReport:
    """Outcome of one ``run_checkers`` call."""

    graph: str
    violations: list[Violation] = field(default_factory=list)
    checkers_run: list[str] = field(default_factory=list)
    #: checker name -> wall seconds
    checker_times: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """No *error* violations (warnings do not fail a run)."""
        return not self.errors()

    def errors(self) -> list[Violation]:
        return [v for v in self.violations if v.severity is Severity.ERROR]

    def warnings(self) -> list[Violation]:
        return [v for v in self.violations if v.severity is Severity.WARNING]

    def by_checker(self) -> dict[str, list[Violation]]:
        grouped: dict[str, list[Violation]] = {}
        for violation in self.violations:
            grouped.setdefault(violation.checker, []).append(violation)
        return grouped

    def format(self) -> str:
        if not self.violations:
            return f"{self.graph}: ok ({len(self.checkers_run)} checkers)"
        lines = [f"{self.graph}: {len(self.violations)} violation(s)"]
        lines.extend(f"  {v.format()}" for v in self.violations)
        return "\n".join(lines)


def _select(
    names: Optional[Iterable[str]],
    disable: Sequence[str],
    scope: str,
) -> list[Checker]:
    if names is None:
        selected = all_checkers(scope)
    else:
        selected = [get_checker(n) for n in names]
    return [c for c in selected if c.name not in set(disable)]


def _execute(
    ctx: _ContextBase,
    selected: list[Checker],
    fail_fast: bool,
    report: CheckReport,
) -> CheckReport:
    tracer = current_tracer()
    ctx.fail_fast = fail_fast
    for chk in selected:
        ctx._checker = chk
        before = len(ctx.violations)
        start = time.perf_counter()
        stop = False
        try:
            chk.func(ctx)
        except _StopCheck:
            stop = True
        except Exception as exc:  # a corrupt graph may crash an analysis
            ctx.violations.append(
                Violation(
                    checker=chk.name,
                    severity=Severity.ERROR,
                    graph=ctx.graph_name,
                    message=f"checker crashed: {type(exc).__name__}: {exc}",
                )
            )
            stop = fail_fast
        finally:
            ctx._checker = None
        elapsed = time.perf_counter() - start
        report.checkers_run.append(chk.name)
        report.checker_times[chk.name] = (
            report.checker_times.get(chk.name, 0.0) + elapsed
        )
        found = len(ctx.violations) - before
        tracer.count(f"analysis.checker.{chk.name}.us", int(elapsed * 1e6))
        if found:
            tracer.count(f"analysis.checker.{chk.name}.violations", found)
            tracer.count(f"analysis.checker.{chk.name}.fail")
            registry = current_registry()
            for violation in ctx.violations[before:]:
                registry.inc(
                    "repro_analysis_violations_total",
                    severity=violation.severity.value,
                )
        else:
            tracer.count(f"analysis.checker.{chk.name}.pass")
        if stop:
            break
    report.violations = ctx.violations
    tracer.count("analysis.runs")
    if report.errors():
        tracer.count("analysis.runs.fail")
    else:
        tracer.count("analysis.runs.pass")
    return report


def run_checkers(
    graph: Graph,
    program=None,
    *,
    checkers: Optional[Iterable[str]] = None,
    disable: Sequence[str] = (),
    fail_fast: bool = False,
) -> CheckReport:
    """Run IR checkers over one graph.

    ``checkers`` selects by name (None = every registered IR checker);
    ``disable`` removes names from the selection.  With ``fail_fast``
    the run stops at the first :data:`Severity.ERROR` violation —
    warnings never stop a run.
    """
    selected = _select(checkers, disable, SCOPE_IR)
    ctx = CheckerContext(graph, program)
    return _execute(ctx, selected, fail_fast, CheckReport(graph=graph.name))


def run_program_checkers(
    program,
    *,
    checkers: Optional[Iterable[str]] = None,
    disable: Sequence[str] = (),
    fail_fast: bool = False,
) -> list[CheckReport]:
    """Run IR checkers over every function of a program."""
    reports = []
    for graph in program.functions.values():
        report = run_checkers(
            graph,
            program,
            checkers=checkers,
            disable=disable,
            fail_fast=fail_fast,
        )
        reports.append(report)
        if fail_fast and not report.ok:
            break
    return reports
