"""The megaunit engine: whole-program exec-unit exactness.

``MegaunitVirtualMachine`` compiles the entire call graph into one
generated Python module — registers as locals, threaded intra-function
dispatch, ``OP_CALL`` as a direct Python call — so every observable
(values, traps, step/cycle accounting, budget stops mid-call and
mid-segment, globals, reset) must match the reference interpreter
bit-for-bit, and every degradation path (hooks, missing block spans,
insufficient recursion headroom) must fall back transparently with a
``vm.fallback`` event.
"""

import sys

import pytest

from repro.analysis.bcverify import lint_megaunit_source, verify_bytecode
from repro.costmodel.model import cycles_of
from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import (
    BudgetExceeded,
    Interpreter,
    ProfileCollector,
    observable_outcome,
)
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.tracer import Tracer, use_tracer
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.compiler import compile_and_profile, make_engine
from repro.pipeline.config import DBDS
from repro.vm import MegaunitVirtualMachine, translate_program
from repro.vm.megaunit import (
    MegaunitUnsupported,
    compile_module,
    generate_module_source,
    stack_headroom_ok,
)

APPS = {
    "nqueens": ("examples/apps/nqueens.mini", [6]),
    "wordfreq": ("examples/apps/wordfreq.mini", [120]),
    "matrix": ("examples/apps/matrix.mini", [8]),
}

#: call-heavy program: budget stops land mid-call, at call boundaries
#: and inside callees at various depths
CALLS = """
fn leaf(x: int) -> int { return x * 3 + 1; }
fn mid(x: int) -> int { return leaf(x) + leaf(x + 1); }
fn fib(n: int) -> int {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn main(n: int) -> int {
  var acc: int = 0;
  var i: int = 0;
  while (i < n) {
    acc = acc + mid(i) + fib(i % 7);
    i = i + 1;
  }
  return acc;
}
"""

LOOP = """
fn main(n: int) -> int {
  var h: int = 99;
  var i: int = 0;
  while (i < n) {
    h = (h * 31 + i) % 100003;
    i = i + 1;
  }
  return h;
}
"""

DEEP = """
fn down(n: int, acc: int) -> int {
  if (n <= 0) { return acc; }
  return down(n - 1, acc + n);
}
fn main(x: int) -> int { return down(x, 0); }
"""


def engines_for(source: str, metered: bool = True, **kwargs):
    program = compile_source(source)
    reference = Interpreter(
        program,
        cycle_cost=cycles_of if metered else None,
        terminator_cost=cycles_of if metered else None,
        **{k: v for k, v in kwargs.items() if k != "max_steps"},
        max_steps=kwargs.get("max_steps", 50_000_000),
    )
    megaunit = MegaunitVirtualMachine(
        translate_program(program), metered=metered, **kwargs
    )
    return reference, megaunit


def assert_parity(reference, megaunit, args, entry="main"):
    ref = reference.run(entry, list(args))
    out = megaunit.run(entry, list(args))
    assert observable_outcome(ref, reference.state) == observable_outcome(
        out, megaunit.state
    )
    assert (ref.steps, ref.cycles) == (out.steps, out.cycles)
    return ref, out


# ----------------------------------------------------------------------
# Values, steps, cycles, traps
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(APPS))
def test_apps_value_step_cycle_parity(name):
    path, args = APPS[name]
    reference, megaunit = engines_for(open(path).read())
    assert_parity(reference, megaunit, args)


def test_call_heavy_parity_and_unmetered():
    reference, megaunit = engines_for(CALLS)
    assert_parity(reference, megaunit, [9])
    reference, megaunit = engines_for(CALLS, metered=False)
    ref = reference.run("main", [9])
    out = megaunit.run("main", [9])
    assert (ref.value, ref.steps) == (out.value, out.steps)
    assert out.cycles == 0.0


def test_optimized_fused_stream_is_consumable():
    # make_engine hands the megaunit engine a fused/quickened bytecode
    # program (fn.xcode set); compilation reads the base stream and the
    # totals still agree because fusion preserves summed costs.
    program, _ = compile_and_profile(CALLS, "main", [[6]], DBDS)
    bytecode = translate_program(program)
    assert any(fn.xcode is not None for fn in bytecode.functions.values())
    reference = make_engine("reference", program)
    megaunit = make_engine("megaunit", program, bytecode=bytecode)
    assert_parity(reference, megaunit, [9])


@pytest.mark.parametrize(
    "source, label",
    [
        ("fn main(x: int) -> int { return 1 / x; }", "division by zero"),
        (
            """
            fn f(x: int) -> int { return 10 % x; }
            fn main(x: int) -> int { return f(x); }
            """,
            "modulo by zero",
        ),
    ],
    ids=["div", "mod-in-callee"],
)
def test_trap_messages_and_accounting(source, label):
    reference, megaunit = engines_for(source)
    ref = reference.run("main", [0])
    out = megaunit.run("main", [0])
    assert ref.trap == out.trap and label in out.trap
    assert (ref.steps, ref.cycles) == (out.steps, out.cycles)


def test_stack_overflow_trap_parity():
    deep = "fn main(x: int) -> int { return main(x + 1); }"
    reference, megaunit = engines_for(deep)
    ref = reference.run("main", [0])
    out = megaunit.run("main", [0])
    assert ref.trap == out.trap == "stack overflow"
    assert ref.steps == out.steps


# ----------------------------------------------------------------------
# Budget stops: mid-segment, mid-call and at call boundaries
# ----------------------------------------------------------------------
@pytest.mark.parametrize("metered", [False, True], ids=["plain", "metered"])
def test_budget_stop_exact_at_every_cap(metered):
    program = compile_source(CALLS)
    bytecode = translate_program(program)
    total = MegaunitVirtualMachine(bytecode).run("main", [5]).steps
    for cap in range(1, total + 2):
        reference = Interpreter(
            program,
            max_steps=cap,
            cycle_cost=cycles_of if metered else None,
            terminator_cost=cycles_of if metered else None,
        )
        megaunit = MegaunitVirtualMachine(
            bytecode, max_steps=cap, metered=metered
        )
        ref_msg = mu_msg = None
        try:
            reference.run("main", [5])
        except BudgetExceeded as exc:
            ref_msg = str(exc)
        try:
            megaunit.run("main", [5])
        except BudgetExceeded as exc:
            mu_msg = str(exc)
        assert ref_msg == mu_msg
        assert reference.state.steps == megaunit.state.steps
        if metered:
            assert reference.state.cycles == megaunit.state.cycles


def test_changing_max_steps_recompiles_module():
    program = compile_source(LOOP)
    megaunit = MegaunitVirtualMachine(translate_program(program), max_steps=50)
    with pytest.raises(BudgetExceeded):
        megaunit.run("main", [1000])
    megaunit.reset()
    megaunit.max_steps = 50_000_000
    assert megaunit.run("main", [10]).value is not None


# ----------------------------------------------------------------------
# Globals, reset
# ----------------------------------------------------------------------
def test_globals_and_reset():
    source = """
    global total: int;
    fn bump(v: int) -> int { total = total + v; return total; }
    fn main(x: int) -> int { bump(x); bump(x); return total; }
    """
    reference, megaunit = engines_for(source)
    assert megaunit.run("main", [5]).value == reference.run("main", [5]).value
    megaunit.reset()
    reference.reset()
    assert megaunit.run("main", [3]).value == reference.run("main", [3]).value


# ----------------------------------------------------------------------
# Fallbacks
# ----------------------------------------------------------------------
def test_recursion_headroom_falls_back_to_closure():
    # max_call_depth far above what CPython's recursion limit can host
    # natively: the conservative up-front guard must decline the native
    # path, fall back to the closure engine for the whole activation,
    # and still be bit-identical (the run's actual depth is modest).
    program = compile_source(DEEP)
    bytecode = translate_program(program)
    assert not stack_headroom_ok(1, sys.getrecursionlimit() + 100)
    reference = Interpreter(
        program,
        cycle_cost=cycles_of,
        terminator_cost=cycles_of,
        max_call_depth=sys.getrecursionlimit() + 100,
    )
    tracer = Tracer()
    registry = MetricsRegistry()
    megaunit = MegaunitVirtualMachine(
        bytecode, metered=True,
        max_call_depth=sys.getrecursionlimit() + 100,
    )
    with use_tracer(tracer), use_registry(registry):
        assert_parity(reference, megaunit, [150])
    events = [e for e in tracer.events if e.name == "vm.fallback"]
    assert len(events) == 1
    assert events[0].attrs == {
        "engine": "megaunit",
        "fallback": "closure",
        "reason": "recursion-headroom",
    }
    assert registry.snapshot().counter_value(
        "repro_vm_fallback_total", engine="megaunit",
        reason="recursion-headroom",
    ) == 1
    # The fallback is noted once per machine, not once per frame.
    with use_tracer(tracer):
        megaunit.reset()
        megaunit.run("main", [10])
    assert len([e for e in tracer.events if e.name == "vm.fallback"]) == 1


def test_missing_block_spans_fall_back():
    program = compile_source(LOOP)
    bytecode = translate_program(program)
    bytecode.function("main").blocks = ()
    with pytest.raises(MegaunitUnsupported):
        generate_module_source(bytecode)
    tracer = Tracer()
    megaunit = MegaunitVirtualMachine(bytecode, metered=True)
    reference = Interpreter(
        program, cycle_cost=cycles_of, terminator_cost=cycles_of
    )
    with use_tracer(tracer):
        assert_parity(reference, megaunit, [21])
    events = [e for e in tracer.events if e.name == "vm.fallback"]
    assert [e.attrs["reason"] for e in events] == ["no-block-spans"]


def test_profile_hook_falls_back_to_machine_loops():
    program = compile_source(CALLS)
    ref_profile, mu_profile = ProfileCollector(), ProfileCollector()
    Interpreter(program, profile=ref_profile).run("main", [6])
    MegaunitVirtualMachine(
        translate_program(program), profile=mu_profile
    ).run("main", [6])
    assert ref_profile.block_counts == mu_profile.block_counts
    assert ref_profile.branch_counts == mu_profile.branch_counts


def test_observer_hook_falls_back_to_machine_loops():
    program = compile_source(LOOP)
    seen_ref, seen_mu = [], []
    Interpreter(program, observer=lambda i, v: seen_ref.append((i, v))).run(
        "main", [7]
    )
    MegaunitVirtualMachine(
        translate_program(program),
        observer=lambda i, v: seen_mu.append((i, v)),
    ).run("main", [7])
    assert seen_ref == seen_mu


# ----------------------------------------------------------------------
# Generated source: shape, lint, verifier integration
# ----------------------------------------------------------------------
def test_module_source_is_real_python_and_lints_clean():
    program, _ = compile_and_profile(CALLS, "main", [[6]], DBDS)
    bytecode = translate_program(program)
    for metered in (False, True):
        source = generate_module_source(bytecode, metered=metered)
        compile(source, "<megaunit-test>", "exec")  # must parse
        assert "def _mu0(vm, m" in source
        assert lint_megaunit_source(bytecode, metered=metered) == []


def test_verify_bytecode_runs_the_megaunit_lint():
    program, _ = compile_and_profile(CALLS, "main", [[6]], DBDS)
    bytecode = translate_program(program)
    report = verify_bytecode(bytecode, program, quicken=True)
    assert report.ok, report.format()


def test_straight_line_function_has_no_dispatch_loop():
    source = "fn main(x: int) -> int { return x * 2 + 1; }"
    bytecode = translate_program(compile_source(source))
    text = generate_module_source(bytecode)
    assert "while True" not in text and "_L" not in text


# ----------------------------------------------------------------------
# Codegen cache
# ----------------------------------------------------------------------
def test_codegen_cache_round_trip(tmp_path):
    program = compile_source(CALLS)
    bytecode = translate_program(program)
    cache = ArtifactCache(tmp_path / "cache")
    registry = MetricsRegistry()
    with use_registry(registry):
        cold = MegaunitVirtualMachine(
            bytecode, metered=True, codegen_cache=cache
        )
        cold_result = cold.run("main", [8])
    snap = registry.snapshot()
    assert snap.counter_value(
        "repro_codegen_cache_total", result="miss", engine="megaunit"
    ) == 1
    with use_registry(registry):
        warm = MegaunitVirtualMachine(
            bytecode, metered=True, codegen_cache=cache
        )
        warm_result = warm.run("main", [8])
    snap = registry.snapshot()
    assert snap.counter_value(
        "repro_codegen_cache_total", result="hit", engine="megaunit"
    ) == 1
    assert (cold_result.value, cold_result.steps, cold_result.cycles) == (
        warm_result.value, warm_result.steps, warm_result.cycles
    )
    # The exec'd-from-cache module carries the same source text.
    assert warm._module().source == cold._module().source


def test_codegen_cache_key_tracks_baked_knobs(tmp_path):
    # Different max_steps bake different budget guards: the warm run
    # must miss rather than execute a stale unit.
    program = compile_source(LOOP)
    bytecode = translate_program(program)
    cache = ArtifactCache(tmp_path / "cache")
    registry = MetricsRegistry()
    with use_registry(registry):
        MegaunitVirtualMachine(
            bytecode, metered=True, codegen_cache=cache, max_steps=1000
        ).run("main", [5])
        MegaunitVirtualMachine(
            bytecode, metered=True, codegen_cache=cache, max_steps=2000
        ).run("main", [5])
    snap = registry.snapshot()
    assert snap.counter_value(
        "repro_codegen_cache_total", result="miss", engine="megaunit"
    ) == 2
    assert snap.counter_value(
        "repro_codegen_cache_total", result="hit", engine="megaunit"
    ) == 0


def test_closure_engine_also_caches_codegen(tmp_path):
    from repro.vm import ClosureVirtualMachine

    program = compile_source(CALLS)
    bytecode = translate_program(program)
    cache = ArtifactCache(tmp_path / "cache")
    registry = MetricsRegistry()
    with use_registry(registry):
        cold = ClosureVirtualMachine(
            bytecode, metered=True, codegen_cache=cache
        )
        cold_result = cold.run("main", [8])
        warm = ClosureVirtualMachine(
            bytecode, metered=True, codegen_cache=cache
        )
        warm_result = warm.run("main", [8])
    snap = registry.snapshot()
    assert snap.counter_value(
        "repro_codegen_cache_total", result="hit", engine="closure"
    ) > 0
    assert (cold_result.value, cold_result.steps, cold_result.cycles) == (
        warm_result.value, warm_result.steps, warm_result.cycles
    )


# ----------------------------------------------------------------------
# Tier-2 integration
# ----------------------------------------------------------------------
def test_tiered_tier2_promotion_pairs_events_and_agrees():
    from repro.vm import TieredVirtualMachine, TieringPolicy

    program, _ = compile_and_profile(CALLS, "main", [[6]], DBDS)
    reference = make_engine("reference", program)
    expected = reference.run("main", [10])
    tracer = Tracer()
    tiered = TieredVirtualMachine(
        program,
        metered=True,
        policy=TieringPolicy(
            threshold=4, tier2_engine="megaunit", tier2_threshold=8
        ),
    )
    with use_tracer(tracer):
        out = tiered.run("main", [10])
    assert (out.value, out.steps, out.cycles) == (
        expected.value, expected.steps, expected.cycles
    )
    promotes = [e for e in tracer.events if e.name == "tier.promote"]
    compiles = [e for e in tracer.events if e.name == "tier.compile"]
    tier2 = [e for e in promotes if e.attrs["trigger"] == "tier2"]
    assert tier2, "expected at least one tier-2 promotion"
    assert len(promotes) == len(compiles)
    for event in tier2:
        assert event.attrs["threshold"] == 8
        assert event.attrs["hotness"] >= 8
