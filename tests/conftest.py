"""Shared pytest fixtures (helpers live in tests/helpers.py)."""

from __future__ import annotations

import pytest

from tests.helpers import build_diamond


@pytest.fixture
def diamond() -> dict:
    """The Figure 1 diamond CFG, built fresh per test."""
    return build_diamond()
