"""DBDS decision events must agree with the ``explain`` tier.

Both now share ``tradeoff.evaluate_candidate``/``emit_decision``, so a
recorded trace of a real DBDS run and the offline explain report must
tell the same story wherever their inputs coincide: before the first
accepted duplication of the first iteration, the phase evaluates every
candidate against ``current_size == initial_size`` — exactly the
explain premise.
"""

import pathlib

import pytest

from repro.dbds.explain import explain_candidates
from repro.dbds.phase import DbdsPhase
from repro.frontend.irbuilder import compile_source
from repro.obs import Tracer, use_tracer
from repro.pipeline.compiler import Compiler
from repro.pipeline.config import BASELINE, DBDS

APPS = sorted(
    (pathlib.Path(__file__).parent / ".." / ".." / "examples" / "apps").resolve().glob("*.mini")
)

DECISION_FIELDS = ("benefit", "cost", "probability", "accepted", "reason")


def prepared_program(path):
    """Front end + the pre-DBDS pipeline (inline + cleanups)."""
    program = compile_source(path.read_text())
    Compiler(BASELINE).compile_program(program)
    return program


@pytest.mark.parametrize("path", APPS, ids=lambda p: p.stem)
class TestAgreementWithExplain:
    def test_decisions_match_explain_verdicts(self, path):
        program = prepared_program(path)
        compared = 0
        for name in list(program.functions):
            graph = program.function(name)
            explanations = explain_candidates(graph, program)
            verdicts = {
                (e.candidate.merge.name, e.candidate.pred.name): e.accepted
                for e in explanations
            }
            tracer = Tracer()
            with use_tracer(tracer):
                DbdsPhase(program).run(graph)
            round0 = [
                e
                for e in tracer.named("dbds.decision")
                if e.attrs.get("iteration") == 0 and e.attrs.get("mode") == "dbds"
            ]
            seen_accept = False
            for event in round0:
                attrs = event.attrs
                for field in DECISION_FIELDS:
                    assert field in attrs
                pair = (attrs["merge"], attrs["pred"])
                if "invalidated" in attrs["reason"]:
                    continue
                assert pair in verdicts
                if not seen_accept:
                    # Same premise as explain: budget untouched so far.
                    assert attrs["accepted"] == verdicts[pair], (
                        f"{path.stem}/{name} {pair}"
                    )
                elif attrs["accepted"]:
                    # Tighter budget accepted => looser explain budget must too.
                    assert verdicts[pair]
                compared += 1
                seen_accept = seen_accept or attrs["accepted"]
        assert compared > 0


@pytest.mark.parametrize("path", APPS, ids=lambda p: p.stem)
def test_full_pipeline_trace_has_phases_and_decisions(path):
    """Acceptance shape: phase spans for every pipeline phase and DBDS
    decision events with the trade-off fields."""
    program = compile_source(path.read_text())
    tracer = Tracer()
    Compiler(DBDS, tracer=tracer).compile_program(program)
    phases = {e.attrs.get("phase") for e in tracer.spans("phase")}
    assert {
        "inlining",
        "canonicalize",
        "global-value-numbering",
        "loop-invariant-code-motion",
        "conditional-elimination",
        "read-elimination",
        "partial-escape-analysis",
        "dbds",
    } <= phases
    decisions = tracer.named("dbds.decision")
    assert decisions
    for event in decisions:
        for field in DECISION_FIELDS:
            assert field in event.attrs
    candidates = tracer.named("dbds.candidate")
    assert len(candidates) == tracer.counter("dbds.candidates")
