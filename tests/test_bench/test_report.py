"""Tests for the evaluation report generator."""

import dataclasses

import pytest

import repro.bench.workloads.suites as suites
from repro.bench.report import render_markdown, run_evaluation


@pytest.fixture(scope="module")
def tiny_evaluation(tmp_path_factory):
    """One-benchmark-per-suite evaluation, shared across tests."""
    tiny = {
        name: dataclasses.replace(
            profile, benchmark_names=profile.benchmark_names[:1]
        )
        for name, profile in suites.ALL_SUITES.items()
    }
    saved = dict(suites.ALL_SUITES)
    suites.ALL_SUITES.clear()
    suites.ALL_SUITES.update(tiny)
    try:
        yield run_evaluation(suites=["micro", "octane"])
    finally:
        suites.ALL_SUITES.clear()
        suites.ALL_SUITES.update(saved)


class TestRunEvaluation:
    def test_requested_suites_present(self, tiny_evaluation):
        assert set(tiny_evaluation.reports) == {"micro", "octane"}

    def test_headline_fields(self, tiny_evaluation):
        headline = tiny_evaluation.headline()
        assert headline["benchmarks"] == 2
        assert "/" in headline["max_speedup_benchmark"]
        assert isinstance(headline["mean_speedup"], float)


class TestRenderMarkdown:
    def test_contains_suite_sections(self, tiny_evaluation):
        markdown = render_markdown(tiny_evaluation)
        assert "## Suite: micro" in markdown
        assert "## Suite: octane" in markdown
        assert "## Headline" in markdown

    def test_contains_benchmark_rows(self, tiny_evaluation):
        markdown = render_markdown(tiny_evaluation)
        for report in tiny_evaluation.reports.values():
            for row in report.rows:
                assert f"| {row.workload} |" in markdown

    def test_tables_well_formed(self, tiny_evaluation):
        markdown = render_markdown(tiny_evaluation)
        table_lines = [l for l in markdown.splitlines() if l.startswith("|")]
        assert table_lines
        widths = {line.count("|") for line in table_lines}
        assert len(widths) == 1  # consistent column count

    def test_cli_evaluate_writes_report(self, tiny_evaluation, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "report.md"
        code = main(["evaluate", "--suites", "micro", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "## Suite: micro" in out.read_text()
        assert "mean speedup" in capsys.readouterr().out
