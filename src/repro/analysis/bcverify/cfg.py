"""Bytecode CFG recovery: block structure over flat instruction streams.

The verifier's first job is turning a translated function's flat
instruction stream back into a control-flow graph it can reason about.
:func:`build_cfg` walks the block spans recorded at translation time
(``fn.blocks``), decodes each instruction through the
:mod:`repro.vm.opspec` registry, and produces a :class:`BytecodeCFG`
whose blocks know their executable sites, their terminator and their
successor edges.  It works over either stream of a function:

* the plain ``fn.code`` stream (``fused=False``) — every pc is a site;
* the fast ``fn.xcode`` stream (``fused=True``) — sites advance by the
  step weight baked into each tuple, and the slots a superinstruction
  consumed are collected as *padding* (they must be unreachable).

Anything that prevents sound CFG recovery — an unknown opcode, a span
tiling mismatch, a terminator in the middle of a block, a block that
falls through without one, a branch into the middle of a block —
raises :class:`DecodeError`; the structure checker converts that into
a report violation and the downstream dataflow checkers skip the
function.

:func:`instruction_events` linearizes one instruction into its
``("use", reg)`` / ``("def", reg)`` / ``("edge", descriptor)`` events
in execution order, recursing through the generic fused forms' embedded
constituent tuples — the one decoder every dataflow analysis shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...vm.opspec import BASE_FAMILIES, OPCODE_SPECS, OpSpec


class DecodeError(Exception):
    """An instruction stream cannot be soundly decoded into a CFG."""


def spec_of(ins_or_op) -> OpSpec:
    """The :class:`OpSpec` for an opcode (or instruction tuple)."""
    opcode = ins_or_op[0] if isinstance(ins_or_op, tuple) else ins_or_op
    spec = OPCODE_SPECS.get(opcode)
    if spec is None:
        raise DecodeError(f"unknown opcode {opcode!r}")
    return spec


def is_terminator(ins: tuple) -> bool:
    """Does this (possibly fused) instruction end its basic block?

    The generic pair form is dynamic: ``fused2`` terminates exactly
    when its embedded second half does.
    """
    spec = spec_of(ins)
    if spec.family == "fused2":
        return spec_of(ins[5]).terminator
    return spec.terminator


def _emit_events(ins: tuple, fused: bool, out: list) -> None:
    spec = spec_of(ins)
    fam = spec.family
    if fam == "base":
        for i, kind in enumerate(spec.sig):
            if kind == "r":
                out.append(("use", ins[4 + i]))
        if ins[3] >= 0:
            out.append(("def", ins[3]))
    elif fam == "call":
        for reg in ins[5]:
            out.append(("use", reg))
        out.append(("def", ins[3]))
    elif fam == "goto":
        out.append(("edge", ins[4]))
    elif fam == "if":
        out.append(("use", ins[4]))
        out.append(("edge", ins[5]))
        out.append(("edge", ins[6]))
    elif fam == "return":
        if ins[4] >= 0:
            out.append(("use", ins[4]))
    elif fam == "fused-if":
        out += [("use", ins[4]), ("use", ins[5]), ("def", ins[3]),
                ("edge", ins[6]), ("edge", ins[7])]
    elif fam == "fused-pair":
        out += [("use", ins[4]), ("use", ins[5]), ("def", ins[3]),
                ("use", ins[7]), ("use", ins[8]), ("def", ins[6])]
    elif fam == "fused-goto":
        out += [("use", ins[4]), ("use", ins[5]), ("def", ins[3]),
                ("edge", ins[6])]
    elif fam == "fused-triple":
        for d, x, y in ((3, 4, 5), (6, 7, 8), (9, 10, 11)):
            out += [("use", ins[x]), ("use", ins[y]), ("def", ins[d])]
    elif fam == "fused2":
        _emit_events(ins[4], False, out)
        _emit_events(ins[5], False, out)
    elif fam == "fused2-goto":
        _emit_events(ins[4], False, out)
        out.append(("edge", ins[5]))
    elif fam == "quick-const":
        out += [("use", ins[4]), ("def", ins[3])]
    elif fam == "quick-guard":
        out += [("use", ins[4]), ("use", ins[5]), ("def", ins[3])]
    else:  # pragma: no cover - every registered family is handled
        raise DecodeError(f"unhandled instruction family {fam!r}")


def instruction_events(ins: tuple, fused: bool = False) -> list:
    """``("use", r)`` / ``("def", r)`` / ``("edge", e)`` in exec order."""
    out: list = []
    _emit_events(ins, fused, out)
    return out


@dataclass
class BCBlock:
    """One recovered basic block of an instruction stream."""

    index: int
    name: str
    start: int
    count: int
    #: executable site pcs in order (for a fused stream, superinstruction
    #: heads only — consumed slots are in the CFG's padding set)
    pcs: tuple = ()
    terminator_pc: int = -1
    #: outgoing edge descriptors, parallel to ``succs``
    edges: tuple = ()
    #: successor block indices, parallel to ``edges``
    succs: tuple = ()
    preds: tuple = ()


class BytecodeCFG:
    """The recovered control-flow graph of one stream of a function."""

    def __init__(
        self,
        fn,
        fused: bool,
        blocks: list[BCBlock],
        padding: frozenset,
    ) -> None:
        self.fn = fn
        self.fused = fused
        self.blocks = blocks
        self.by_start = {block.start: block for block in blocks}
        self.padding = padding

    @property
    def entry(self) -> BCBlock:
        return self.blocks[0]

    def stream(self) -> list:
        return self.fn.xcode if self.fused else self.fn.code

    def __repr__(self) -> str:
        kind = "xcode" if self.fused else "code"
        return (
            f"<BytecodeCFG {self.fn.name}/{kind}: {len(self.blocks)} "
            f"block(s), {len(self.padding)} padding slot(s)>"
        )


def _edge_target(edge) -> int:
    if (
        not isinstance(edge, tuple)
        or len(edge) != 4
        or not isinstance(edge[0], int)
    ):
        raise DecodeError(f"malformed edge descriptor {edge!r}")
    return edge[0]


def build_cfg(fn, fused: bool = False) -> BytecodeCFG:
    """Recover the CFG of one stream; raises :class:`DecodeError`.

    Requires span metadata (``fn.blocks``) — legacy artifacts without
    it cannot be verified structurally beyond per-tuple shape.
    """
    stream = fn.xcode if fused else fn.code
    if fused and stream is None:
        raise DecodeError("function has no fast stream (fn.xcode is None)")
    if not fn.blocks:
        raise DecodeError("function has no block-span metadata")
    spans = sorted(fn.blocks, key=lambda span: span[0])
    expected_start = 0
    for start, count, _name in spans:
        if start != expected_start or count <= 0:
            raise DecodeError(
                f"block spans do not tile the stream: span at {start} "
                f"(expected {expected_start}, count {count})"
            )
        expected_start = start + count
    if expected_start != len(stream):
        raise DecodeError(
            f"block spans cover {expected_start} slots but the stream "
            f"has {len(stream)}"
        )
    if fused and len(stream) != len(fn.code):
        raise DecodeError(
            f"fast stream length {len(stream)} != code length {len(fn.code)}"
        )

    blocks: list[BCBlock] = []
    padding: set[int] = set()
    for index, (start, count, name) in enumerate(spans):
        end = start + count
        pcs: list[int] = []
        terminator_pc = -1
        pc = start
        while pc < end:
            ins = stream[pc]
            if not isinstance(ins, tuple) or len(ins) < 4:
                raise DecodeError(f"malformed instruction at pc {pc}: {ins!r}")
            spec = spec_of(ins)
            if fused:
                weight = ins[-1]
                if not isinstance(weight, int) or weight < 1:
                    raise DecodeError(
                        f"bad step weight {weight!r} at pc {pc}"
                    )
            else:
                weight = 1
                if spec.family not in BASE_FAMILIES:
                    raise DecodeError(
                        f"fused-only opcode {spec.name!r} in the plain "
                        f"code stream at pc {pc}"
                    )
            pcs.append(pc)
            padding.update(range(pc + 1, pc + weight))
            if is_terminator(ins):
                if pc + weight != end:
                    raise DecodeError(
                        f"terminator {spec.name!r} in the middle of "
                        f"block {name!r} at pc {pc}"
                    )
                terminator_pc = pc
            pc += weight
        if pc != end:
            raise DecodeError(
                f"superinstruction at pc {pcs[-1]} spans past the end "
                f"of block {name!r}"
            )
        if terminator_pc < 0:
            raise DecodeError(f"block {name!r} falls through (no terminator)")
        blocks.append(
            BCBlock(
                index=index, name=name, start=start, count=count,
                pcs=tuple(pcs), terminator_pc=terminator_pc,
            )
        )

    cfg = BytecodeCFG(fn, fused, blocks, frozenset(padding))
    preds: dict[int, list[int]] = {block.index: [] for block in blocks}
    for block in blocks:
        edges = [
            event[1]
            for event in instruction_events(
                stream[block.terminator_pc], fused
            )
            if event[0] == "edge"
        ]
        succs = []
        for edge in edges:
            target = _edge_target(edge)
            succ = cfg.by_start.get(target)
            if succ is None:
                if 0 <= target < len(stream):
                    raise DecodeError(
                        f"branch from block {block.name!r} into the middle "
                        f"of a block (pc {target})"
                    )
                raise DecodeError(
                    f"branch target {target} out of range in block "
                    f"{block.name!r}"
                )
            succs.append(succ.index)
            preds[succ.index].append(block.index)
        block.edges = tuple(edges)
        block.succs = tuple(succs)
    for block in blocks:
        block.preds = tuple(preds[block.index])
    return cfg


__all__ = [
    "BCBlock",
    "BytecodeCFG",
    "DecodeError",
    "build_cfg",
    "instruction_events",
    "is_terminator",
    "spec_of",
]
