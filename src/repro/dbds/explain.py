"""Human-readable duplication-decision reports.

``explain_graph`` re-runs the simulation and trade-off tiers in
read-only mode and narrates every predecessor-merge pair: the estimated
benefit and its sources, the cost, the probability, and how each term
of the Section 5.4 ``shouldDuplicate`` predicate evaluated.  Exposed as
``python -m repro explain prog.mini``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..costmodel.estimator import graph_code_size
from ..ir.graph import Graph, Program
from .simulation import SimulationResult, SimulationTier
from .tradeoff import TradeOffConfig, sort_candidates


@dataclass
class CandidateExplanation:
    """One candidate's full trade-off story."""

    candidate: SimulationResult
    weighted: float
    threshold_term: bool
    unit_size_term: bool
    budget_term: bool

    @property
    def accepted(self) -> bool:
        return self.threshold_term and self.unit_size_term and self.budget_term

    def verdict(self) -> str:
        if self.accepted:
            return "DUPLICATE"
        reasons = []
        if not self.threshold_term:
            reasons.append("benefit below cost threshold")
        if not self.unit_size_term:
            reasons.append("compilation unit at max size")
        if not self.budget_term:
            reasons.append("code-size budget exhausted")
        return "skip (" + ", ".join(reasons) + ")"


def explain_candidates(
    graph: Graph,
    program: Optional[Program] = None,
    config: Optional[TradeOffConfig] = None,
) -> list[CandidateExplanation]:
    """Simulate and evaluate every pair without changing the graph.

    The budget term is evaluated against the *current* size for each
    candidate independently (the real optimization tier consumes budget
    as it goes, so later candidates there can see a tighter budget).
    """
    config = config or TradeOffConfig()
    tier = SimulationTier(graph, program)
    candidates = sort_candidates(tier.run(), config)
    size = graph_code_size(graph)
    explanations = []
    for candidate in candidates:
        weighted = candidate.benefit * (
            candidate.probability if config.use_probability else 1.0
        )
        explanations.append(
            CandidateExplanation(
                candidate=candidate,
                weighted=weighted,
                threshold_term=weighted * config.benefit_scale > candidate.cost,
                unit_size_term=size < config.max_unit_size,
                # Pre-duplication, current size == initial size, so the
                # paper's `cs + c < is * IB` reduces to this.
                budget_term=size + candidate.cost < size * config.increase_budget,
            )
        )
    return explanations


def format_explanations(
    graph: Graph, explanations: list[CandidateExplanation]
) -> str:
    """Render the report the way a compiler log would."""
    lines = [
        f"DBDS candidate report for {graph.name!r} "
        f"(unit size {graph_code_size(graph):.0f})",
    ]
    if not explanations:
        lines.append("  no predecessor-merge pairs to consider")
        return "\n".join(lines)
    for rank, explanation in enumerate(explanations, start=1):
        c = explanation.candidate
        fired = ", ".join(sorted(set(c.reasons))) or "nothing fires"
        lines.append(
            f"  #{rank} {c.merge.name} -> {c.pred.name}: "
            f"benefit {c.benefit:.1f} cyc x p {c.probability:.2f} "
            f"= {explanation.weighted:.2f}, cost {c.cost:.1f}"
        )
        lines.append(f"      enables: {fired}")
        lines.append(f"      decision: {explanation.verdict()}")
    return "\n".join(lines)


def explain_graph(
    graph: Graph,
    program: Optional[Program] = None,
    config: Optional[TradeOffConfig] = None,
) -> str:
    """One-call convenience: simulate, evaluate, render."""
    return format_explanations(
        graph, explain_candidates(graph, program, config)
    )
