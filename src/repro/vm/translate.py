"""IR → bytecode translation.

Register allocation of SSA values is trivial by construction — every
value gets one dense slot, assigned in a fixed layout::

    [parameters][interned constants][phi/instruction results][void][scratch]

* **parameters** occupy slots ``0..nparams-1`` so a frame is entered by
  copying the template and overwriting the argument prefix;
* **constants** are materialized once into the frame template, so the
  dispatch loop never checks ``isinstance(value, Constant)``;
* **instructions and phis** each own a slot (SSA single-assignment
  makes slot reuse unnecessary for correctness; re-executions in loops
  simply overwrite);
* the shared **void** slot is the destination of stores, which produce
  ``None`` exactly like the reference's ``env[store] = None``;
* the **scratch** slot breaks cycles when sequentializing phi copies.

Phis are lowered into per-edge **parallel-copy move sequences** folded
into the predecessor's branch instruction: the edge descriptor carries
``(dst, src)`` register moves sequentialized with the classic
readers-count algorithm (a swap cycle borrows the scratch register),
which preserves the reference's read-all-before-write-any semantics.
Step parity falls out of the encoding: every executed bytecode tuple
is exactly one reference step (instructions + terminators), and phi
moves ride along with the branch at zero extra steps.

Cycle costs are baked into each tuple at translation time.  Phi entry
costs (zero under the default model) are folded into the cost of the
successor block's first instruction — total metered cycles match the
reference exactly on completed runs.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..costmodel.model import cycles_of
from ..ir.cfgutils import reverse_post_order
from ..ir.graph import Graph, Program
from ..ir.nodes import (
    ArithOp,
    ArrayLength,
    ArrayLoad,
    ArrayStore,
    Call,
    Compare,
    Constant,
    Goto,
    If,
    LoadField,
    LoadGlobal,
    Neg,
    New,
    NewArray,
    Not,
    Return,
    StoreField,
    StoreGlobal,
)
from .bytecode import (
    ARITH_OPCODES,
    CMP_OPCODES,
    OP_ARRAY_LENGTH,
    OP_ARRAY_LOAD,
    OP_ARRAY_STORE,
    OP_CALL,
    OP_GOTO,
    OP_IF,
    OP_LOAD_FIELD,
    OP_LOAD_GLOBAL,
    OP_NEG,
    OP_NEW,
    OP_NEW_ARRAY,
    OP_NOT,
    OP_RETURN,
    OP_STORE_FIELD,
    OP_STORE_GLOBAL,
    BytecodeFunction,
    BytecodeProgram,
)

_STORE_CLASSES = (StoreField, StoreGlobal, ArrayStore)


def _sequentialize(pairs: list[tuple[int, int]], scratch: int) -> tuple:
    """Order a parallel copy into sequential moves.

    ``pairs`` are ``(dst, src)`` with all destinations distinct.  A
    move is emittable when its destination is not read by any pending
    move; when none is (a cycle), the value of some destination is
    saved to ``scratch`` and remaining readers are redirected there.
    """
    pending = [(d, s) for d, s in pairs if d != s]
    out: list[tuple[int, int]] = []
    while pending:
        srcs = [s for _, s in pending]
        for i, (d, s) in enumerate(pending):
            if d not in srcs:
                out.append((d, s))
                pending.pop(i)
                break
        else:  # every destination is still read: break the cycle
            d = pending[0][0]
            out.append((scratch, d))
            pending = [
                (dd, scratch if ss == d else ss) for dd, ss in pending
            ]
    return tuple(out)


class _GraphTranslator:
    """Translates one graph; see module docstring for the layout."""

    def __init__(
        self,
        program: Program,
        graph: Graph,
        functions: dict[str, BytecodeFunction],
        cycle_cost: Callable,
        terminator_cost: Callable,
    ) -> None:
        self.program = program
        self.graph = graph
        self.functions = functions
        self.cycle_cost = cycle_cost
        self.terminator_cost = terminator_cost
        self.regmap: dict = {}
        self.order = reverse_post_order(graph)
        assert self.order and self.order[0] is graph.entry

    # -- register layout ------------------------------------------------
    def _assign_registers(self) -> None:
        regmap = self.regmap
        next_reg = 0
        for param in self.graph.parameters:
            regmap[param] = next_reg
            next_reg += 1
        self.first_const = next_reg
        self.constants: list[Constant] = []
        for block in self.order:
            for user in block.all_instructions():
                for value in user.inputs:
                    if isinstance(value, Constant) and value not in regmap:
                        regmap[value] = next_reg
                        self.constants.append(value)
                        next_reg += 1
            if block.terminator is not None:
                for value in block.terminator.inputs:
                    if isinstance(value, Constant) and value not in regmap:
                        regmap[value] = next_reg
                        self.constants.append(value)
                        next_reg += 1
        for block in self.order:
            for phi in block.phis:
                regmap[phi] = next_reg
                next_reg += 1
            for ins in block.instructions:
                if isinstance(ins, _STORE_CLASSES):
                    continue  # stores share the void slot
                regmap[ins] = next_reg
                next_reg += 1
        self.void = next_reg
        self.scratch = next_reg + 1
        self.nregs = next_reg + 2
        for block in self.order:
            for ins in block.instructions:
                if isinstance(ins, _STORE_CLASSES):
                    regmap[ins] = self.void

    def _reg(self, value) -> int:
        return self.regmap[value]

    # -- instruction encoding -------------------------------------------
    def _encode(self, ins) -> list:
        """One pre-decoded tuple (as a mutable list until backpatch)."""
        cost = self.cycle_cost(ins)
        dest = self.regmap[ins]
        reg = self._reg
        if isinstance(ins, ArithOp):
            return [ARITH_OPCODES[ins.op], cost, ins, dest, reg(ins.x), reg(ins.y)]
        if isinstance(ins, Compare):
            return [CMP_OPCODES[ins.op], cost, ins, dest, reg(ins.x), reg(ins.y)]
        if isinstance(ins, Not):
            return [OP_NOT, cost, ins, dest, reg(ins.x)]
        if isinstance(ins, Neg):
            return [OP_NEG, cost, ins, dest, reg(ins.x)]
        if isinstance(ins, New):
            decl = self.program.class_table.lookup(ins.object_type.class_name)
            fields = tuple((f.name, f.type.default_value()) for f in decl.fields)
            return [OP_NEW, cost, ins, dest, decl.name, fields]
        if isinstance(ins, LoadField):
            return [OP_LOAD_FIELD, cost, ins, dest, reg(ins.obj), ins.field]
        if isinstance(ins, StoreField):
            return [
                OP_STORE_FIELD, cost, ins, dest,
                reg(ins.obj), ins.field, reg(ins.value),
            ]
        if isinstance(ins, LoadGlobal):
            return [OP_LOAD_GLOBAL, cost, ins, dest, ins.global_name]
        if isinstance(ins, StoreGlobal):
            return [OP_STORE_GLOBAL, cost, ins, dest, ins.global_name, reg(ins.value)]
        if isinstance(ins, NewArray):
            default = ins.element_type.default_value()
            return [OP_NEW_ARRAY, cost, ins, dest, reg(ins.length), default]
        if isinstance(ins, ArrayLoad):
            return [OP_ARRAY_LOAD, cost, ins, dest, reg(ins.array), reg(ins.index)]
        if isinstance(ins, ArrayStore):
            return [
                OP_ARRAY_STORE, cost, ins, dest,
                reg(ins.array), reg(ins.index), reg(ins.value),
            ]
        if isinstance(ins, ArrayLength):
            return [OP_ARRAY_LENGTH, cost, ins, dest, reg(ins.array)]
        if isinstance(ins, Call):
            callee = self.functions[ins.callee]
            return [
                OP_CALL, cost, ins, dest,
                callee, tuple(reg(a) for a in ins.args),
            ]
        raise AssertionError(f"cannot translate {type(ins).__name__}")

    def _encode_terminator(self, term) -> list:
        cost = self.terminator_cost(term)
        if isinstance(term, Return):
            value = -1 if term.value is None else self._reg(term.value)
            return [OP_RETURN, cost, term, -1, value]
        if isinstance(term, Goto):
            return [OP_GOTO, cost, term, -1, term.target]
        if isinstance(term, If):
            return [
                OP_IF, cost, term, -1,
                self._reg(term.condition), term.true_target, term.false_target,
            ]
        raise AssertionError(f"unknown terminator {term!r}")

    # -- edges -----------------------------------------------------------
    def _edge(self, pred_block, target) -> tuple:
        pc = self.block_pc[target]
        if target.phis:
            index = target.predecessor_index(pred_block)
            pairs = [
                (self.regmap[phi], self._reg(phi.input(index)))
                for phi in target.phis
            ]
            moves = _sequentialize(pairs, self.scratch)
            phis = tuple((phi, self.regmap[phi]) for phi in target.phis)
        else:
            moves, phis = (), ()
        return (pc, moves, phis, target)

    # -- driver ----------------------------------------------------------
    def translate(self, fn: BytecodeFunction) -> BytecodeFunction:
        self._assign_registers()
        code: list[list] = []
        spans: list[tuple[int, int, str]] = []
        self.block_pc: dict = {}
        for block in self.order:
            self.block_pc[block] = len(code)
            first = len(code)
            for ins in block.instructions:
                code.append(self._encode(ins))
            code.append(self._encode_terminator(block.terminator))
            spans.append((first, len(code) - first, block.name))
            if block.phis:
                # Phi entry cost rides on the block's first instruction
                # (always present: at minimum the terminator).
                code[first][1] += sum(self.cycle_cost(p) for p in block.phis)
        # Backpatch branch targets now that every block has a pc.
        for ins in code:
            op = ins[0]
            if op == OP_GOTO:
                ins[4] = self._edge(ins[2].block, ins[4])
            elif op == OP_IF:
                ins[5] = self._edge(ins[2].block, ins[5])
                ins[6] = self._edge(ins[2].block, ins[6])
        template = [None] * self.nregs
        for const in self.constants:
            template[self.regmap[const]] = const.value
        fn.nregs = self.nregs
        fn.code = tuple(tuple(ins) for ins in code)
        fn.template = template
        fn.entry_block = self.graph.entry
        fn.blocks = tuple(spans)
        fn.const_base = self.first_const
        fn.const_count = len(self.constants)
        return fn


def translate_graph(
    program: Program,
    graph: Graph,
    functions: Optional[dict[str, BytecodeFunction]] = None,
    cycle_cost: Callable = cycles_of,
    terminator_cost: Callable = cycles_of,
) -> BytecodeFunction:
    """Translate one function graph (callees resolve via ``functions``)."""
    if functions is None:
        functions = {
            name: BytecodeFunction(name, len(g.parameters))
            for name, g in program.functions.items()
        }
    fn = functions[graph.name]
    return _GraphTranslator(
        program, graph, functions, cycle_cost, terminator_cost
    ).translate(fn)


def translate_program(
    program: Program,
    cycle_cost: Callable = cycles_of,
    terminator_cost: Callable = cycles_of,
    fuse: bool = True,
    vmprofile=None,
    check_bc: str = "off",
) -> BytecodeProgram:
    """Translate a whole program into executable bytecode.

    Cost functions default to the node cost model so metered VM runs
    report the same cycle totals as the metered reference interpreter;
    pass custom functions to bake a different model.

    ``fuse=True`` (default) also builds each function's fused fast
    stream (:mod:`repro.vm.fusion`), mining hot pairs from
    ``vmprofile`` when given and from static block frequencies
    otherwise — cached artifacts therefore carry superinstructions.
    ``fuse=False`` yields the plain flat-tuple stream only.

    ``check_bc="rewrite"`` runs the static bytecode verifier
    (:mod:`repro.analysis.bcverify`) on the freshly built streams —
    including a quickened clone of every fused function, so both rewrite
    passes are covered — and raises
    :class:`~repro.analysis.bcverify.BytecodeVerificationError` on any
    violation.  The retranslation-equivalence layer is skipped (it
    would compare the result with itself); ``"load"`` and ``"off"``
    are no-ops here, load-time checking lives in the artifact cache.
    """
    functions = {
        name: BytecodeFunction(name, len(graph.parameters))
        for name, graph in program.functions.items()
    }
    for name, graph in program.functions.items():
        translate_graph(program, graph, functions, cycle_cost, terminator_cost)
    globals_init = tuple(
        (name, ty.default_value()) for name, ty in program.globals.items()
    )
    bytecode = BytecodeProgram(functions, globals_init)
    if fuse:
        from .fusion import fuse_program

        fuse_program(program, bytecode, vmprofile=vmprofile)
    if check_bc == "rewrite":
        from ..analysis.bcverify import (
            BytecodeVerificationError,
            verify_bytecode,
        )

        report = verify_bytecode(
            bytecode, retranslate=False, lint=True, quicken=fuse
        )
        if not report.ok:
            raise BytecodeVerificationError(report)
    return bytecode
