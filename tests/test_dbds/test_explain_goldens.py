"""Golden-file snapshots of ``repro explain`` DBDS decision reports.

The explain report is the human contract of the trade-off tier: every
candidate with its benefit x probability, cost, fired optimizations and
verdict.  These snapshots pin it for three real programs so that a cost
-model or simulation change shows up as a reviewable diff, not a silent
drift.  Regenerate on purpose with::

    PYTHONPATH=src python -m pytest tests/test_dbds/test_explain_goldens.py \
        --update-goldens
"""

from __future__ import annotations

import pathlib

import pytest

from repro.__main__ import main

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "goldens"

#: (example file, profiling args) — args kept small so the profiling
#: interpreter run stays fast while still marking branch probabilities
CASES = [
    ("examples/apps/matrix.mini", "4"),
    ("examples/apps/nqueens.mini", "5"),
    ("examples/apps/wordfreq.mini", "4"),
]


def golden_path(source: str) -> pathlib.Path:
    return GOLDEN_DIR / f"explain_{pathlib.Path(source).stem}.txt"


@pytest.mark.parametrize("source,profile_arg", CASES)
def test_explain_matches_golden(source, profile_arg, update_goldens, capsys):
    rc = main(["explain", source, "--profile-args", profile_arg])
    assert rc == 0
    actual = capsys.readouterr().out
    assert "DBDS candidate report" in actual

    path = golden_path(source)
    if update_goldens:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(actual)
        return
    assert path.exists(), (
        f"golden file {path} missing — run with --update-goldens to create it"
    )
    expected = path.read_text()
    assert actual == expected, (
        f"explain output for {source} drifted from {path}; if the change "
        f"is intentional, regenerate with --update-goldens"
    )
