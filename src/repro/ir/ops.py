"""Operator kinds and their evaluation semantics.

The same evaluation functions are used by the interpreter (to execute
programs), by the constant folder (to fold at compile time) and by the
DBDS simulator (to evaluate action steps without mutating the IR), so
compile-time and run-time semantics cannot drift apart.

Integers are 64-bit two's complement, Java-style: arithmetic wraps,
division truncates toward zero, and division/modulo by zero traps.
"""

from __future__ import annotations

import enum

_MASK = (1 << 64) - 1
_SIGN = 1 << 63


class EvaluationTrap(Exception):
    """A runtime trap: division by zero, null dereference, bad index."""


def wrap64(value: int) -> int:
    """Wrap a Python int to signed 64-bit two's complement."""
    value &= _MASK
    if value & _SIGN:
        value -= 1 << 64
    return value


class BinOp(enum.Enum):
    """Binary arithmetic/bitwise operators on 64-bit integers."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    AND = "&"
    OR = "|"
    XOR = "^"
    SHL = "<<"
    SHR = ">>"
    USHR = ">>>"

    @property
    def commutative(self) -> bool:
        return self in _COMMUTATIVE

    @property
    def can_trap(self) -> bool:
        """Operators that may raise a runtime trap (so cannot be hoisted
        or removed unless the divisor is provably non-zero)."""
        return self in (BinOp.DIV, BinOp.MOD)


_COMMUTATIVE = frozenset({BinOp.ADD, BinOp.MUL, BinOp.AND, BinOp.OR, BinOp.XOR})


class CmpOp(enum.Enum):
    """Comparison operators; EQ/NE also apply to references."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def negate(self) -> "CmpOp":
        """The operator computing the logical negation."""
        return _NEGATIONS[self]

    def swap(self) -> "CmpOp":
        """The operator with the operands exchanged: a OP b == b OP' a."""
        return _SWAPS[self]


_NEGATIONS = {
    CmpOp.EQ: CmpOp.NE,
    CmpOp.NE: CmpOp.EQ,
    CmpOp.LT: CmpOp.GE,
    CmpOp.LE: CmpOp.GT,
    CmpOp.GT: CmpOp.LE,
    CmpOp.GE: CmpOp.LT,
}

_SWAPS = {
    CmpOp.EQ: CmpOp.EQ,
    CmpOp.NE: CmpOp.NE,
    CmpOp.LT: CmpOp.GT,
    CmpOp.LE: CmpOp.GE,
    CmpOp.GT: CmpOp.LT,
    CmpOp.GE: CmpOp.LE,
}


def eval_binop(op: BinOp, a: int, b: int) -> int:
    """Evaluate an integer binary operation with Java-like semantics."""
    if op is BinOp.ADD:
        return wrap64(a + b)
    if op is BinOp.SUB:
        return wrap64(a - b)
    if op is BinOp.MUL:
        return wrap64(a * b)
    if op is BinOp.DIV:
        if b == 0:
            raise EvaluationTrap("division by zero")
        # Truncate toward zero (Python's // floors).
        q = abs(a) // abs(b)
        return wrap64(q if (a >= 0) == (b >= 0) else -q)
    if op is BinOp.MOD:
        if b == 0:
            raise EvaluationTrap("modulo by zero")
        r = abs(a) % abs(b)
        return wrap64(r if a >= 0 else -r)
    if op is BinOp.AND:
        return wrap64(a & b)
    if op is BinOp.OR:
        return wrap64(a | b)
    if op is BinOp.XOR:
        return wrap64(a ^ b)
    if op is BinOp.SHL:
        return wrap64(a << (b & 63))
    if op is BinOp.SHR:
        return wrap64(a >> (b & 63))
    if op is BinOp.USHR:
        return wrap64((a & _MASK) >> (b & 63))
    raise AssertionError(f"unknown op {op}")


def eval_cmp(op: CmpOp, a, b) -> bool:
    """Evaluate a comparison (ints, bools, or references for EQ/NE)."""
    if op is CmpOp.EQ:
        return a is b if _is_ref(a) or _is_ref(b) else a == b
    if op is CmpOp.NE:
        return not eval_cmp(CmpOp.EQ, a, b)
    if op is CmpOp.LT:
        return a < b
    if op is CmpOp.LE:
        return a <= b
    if op is CmpOp.GT:
        return a > b
    if op is CmpOp.GE:
        return a >= b
    raise AssertionError(f"unknown op {op}")


def _is_ref(v) -> bool:
    return not isinstance(v, (int, bool)) and v is not None
