"""Differential tests: the full back end against the IR interpreter."""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backend import Machine, compile_to_machine
from repro.backend.machine import MachineBudgetExceeded
from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter, deep_value
from repro.pipeline.compiler import compile_and_profile
from repro.pipeline.config import DBDS, DUPALOT
from tests.generators import random_program


def machine_outcome(machine: Machine, entry: str, args):
    machine.reset()
    result = machine.run(entry, args)
    return (
        deep_value(result.value),
        result.trap,
        tuple((k, deep_value(v)) for k, v in sorted(machine.globals.items())),
    )


def interp_outcome(program, entry: str, args):
    interp = Interpreter(program)
    result = interp.run(entry, args)
    from repro.interp.interpreter import observable_outcome

    return observable_outcome(result, interp.state)


class TestBasics:
    def test_trap_propagation(self):
        program = compile_source("fn f(x: int) -> int { return 10 / x; }")
        machine = Machine(compile_to_machine(program))
        result = machine.run("f", [0])
        assert result.trapped and "zero" in result.trap

    def test_globals_isolated_by_reset(self):
        program = compile_source(
            "global g: int;\nfn f() -> int { g = g + 1; return g; }"
        )
        machine = Machine(compile_to_machine(program))
        assert machine.run("f", []).value == 1
        assert machine.run("f", []).value == 2
        machine.reset()
        assert machine.run("f", []).value == 1

    def test_step_budget(self):
        program = compile_source(
            "fn f() -> int { var i: int = 0; while (i >= 0) { i = 0; } return i; }"
        )
        machine = Machine(compile_to_machine(program), max_steps=500)
        with pytest.raises(MachineBudgetExceeded):
            machine.run("f", [])

    def test_objects_and_arrays(self):
        program = compile_source(
            """
class P { a: int; b: int; }
fn f(n: int) -> int {
  var xs: int[] = new int[n];
  var p: P = new P { a = 1 };
  var i: int = 0;
  while (i < n) { xs[i] = p.a + i; p.a = p.a + 1; i = i + 1; }
  var s: int = 0;
  i = 0;
  while (i < n) { s = s + xs[i]; i = i + 1; }
  return s;
}
"""
        )
        expected = Interpreter(program).run("f", [6]).value
        assert Machine(compile_to_machine(program)).run("f", [6]).value == expected


ARGS = [[0], [1], [4], [9]]


class TestDifferential:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(min_value=0, max_value=10_000))
    def test_machine_matches_interpreter_on_random_programs(self, seed):
        source = random_program(seed)
        program = compile_source(source)
        lir = compile_to_machine(program)
        machine = Machine(lir)
        for args in ARGS:
            assert machine_outcome(machine, "main", args) == interp_outcome(
                program, "main", args
            ), f"backend diverged for seed {seed}, args {args}\n{source}"

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(min_value=0, max_value=10_000))
    def test_backend_after_dbds_optimization(self, seed):
        """The whole story: frontend -> profile -> DBDS -> backend must
        equal the plain interpretation of the unoptimized program."""
        source = random_program(seed)
        reference_program = compile_source(source)
        optimized, _ = compile_and_profile(source, "main", ARGS[:2], DBDS)
        machine = Machine(compile_to_machine(optimized))
        for args in ARGS:
            assert machine_outcome(machine, "main", args) == interp_outcome(
                reference_program, "main", args
            ), f"DBDS+backend diverged for seed {seed}\n{source}"

    def test_few_registers_full_pipeline(self):
        source = random_program(77)
        reference = compile_source(source)
        optimized, _ = compile_and_profile(source, "main", ARGS[:2], DUPALOT)
        machine = Machine(compile_to_machine(optimized, register_count=3))
        for args in ARGS:
            assert machine_outcome(machine, "main", args) == interp_outcome(
                reference, "main", args
            )


class TestMachineStackOverflow:
    def test_machine_traps_on_deep_recursion(self):
        program = compile_source(
            "fn rec(n: int) -> int { if (n <= 0) { return 0; } return 1 + rec(n - 1); }"
        )
        machine = Machine(compile_to_machine(program))
        result = machine.run("rec", [100_000])
        assert result.trapped and "stack overflow" in result.trap

    def test_machine_matches_interpreter_on_overflow(self):
        program = compile_source(
            "fn rec(n: int) -> int { if (n <= 0) { return 0; } return 1 + rec(n - 1); }"
        )
        interp_result = Interpreter(program).run("rec", [100_000])
        machine_result = Machine(compile_to_machine(program)).run("rec", [100_000])
        assert interp_result.trap == machine_result.trap
