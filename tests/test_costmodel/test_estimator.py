"""Tests for graph-level cost estimation."""

import pytest

from repro.costmodel.estimator import (
    GraphCostSummary,
    block_cycles,
    block_size,
    estimated_run_time,
    graph_code_size,
)
from repro.frontend.irbuilder import compile_source
from repro.ir.frequency import BlockFrequencies
from tests.helpers import build_diamond


class TestBlockCosts:
    def test_block_cycles_sums_instructions(self, diamond):
        merge = diamond["merge"]
        # Phi(0) + Add(1) + Return(2)
        assert block_cycles(merge) == pytest.approx(3.0)

    def test_block_size(self, diamond):
        merge = diamond["merge"]
        # Phi(0) + Add(1) + Return(1)
        assert block_size(merge) == pytest.approx(2.0)

    def test_entry_block_includes_terminator(self, diamond):
        entry = diamond["graph"].entry
        # Compare(1) + If(1)
        assert block_cycles(entry) == pytest.approx(2.0)


class TestGraphCosts:
    def test_code_size_is_sum_of_blocks(self, diamond):
        g = diamond["graph"]
        assert graph_code_size(g) == pytest.approx(
            sum(block_size(b) for b in g.blocks)
        )

    def test_estimated_run_time_weights_by_frequency(self):
        parts = build_diamond(true_prob=0.9)
        g = parts["graph"]
        freqs = BlockFrequencies(g)
        estimate = estimated_run_time(g, freqs)
        by_hand = sum(
            block_cycles(b) * freqs.frequency[b] for b in g.blocks
        )
        assert estimate == pytest.approx(by_hand)

    def test_loops_dominate_estimate(self):
        program = compile_source(
            """
fn hot(n: int) -> int {
  var s: int = 0; var i: int = 0;
  while (i < n) { s = s + i * 3; i = i + 1; }
  return s;
}
fn cold(n: int) -> int { return n * 3 + 1; }
"""
        )
        hot = estimated_run_time(program.function("hot"))
        cold = estimated_run_time(program.function("cold"))
        assert hot > cold * 3

    def test_summary_dataclass(self, diamond):
        summary = GraphCostSummary.of(diamond["graph"])
        assert summary.code_size == graph_code_size(diamond["graph"])
        assert summary.estimated_cycles == pytest.approx(
            estimated_run_time(diamond["graph"])
        )

    def test_optimization_reduces_estimate(self):
        from repro.opts.canonicalize import CanonicalizerPhase

        program = compile_source(
            "fn f(x: int) -> int { return x * 8 / 4 + (2 * 3); }"
        )
        g = program.function("f")
        before = estimated_run_time(g)
        CanonicalizerPhase().run(g)
        after = estimated_run_time(g)
        assert after < before
