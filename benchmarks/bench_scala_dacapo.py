"""Experiment T6 — Figure 6: Scala DaCapo under baseline / DBDS / dupalot.

Paper geomeans: DBDS +3.15% perf / +11.32% compile time / +6.88% size;
dupalot +2.07% perf / +28.40% compile time / +26.27% size.

Shape checks: DBDS improves performance (the boxing/type-check-heavy
suite benefits more than Java DaCapo), and dupalot pays more code size
than DBDS for no better performance.
"""

from _support import record_figure

from repro.bench.harness import format_suite_report, run_suite
from repro.bench.workloads.suites import SCALA_DACAPO


def test_fig6_scala_dacapo(benchmark):
    report = benchmark.pedantic(
        lambda: run_suite(SCALA_DACAPO), rounds=1, iterations=1
    )
    record_figure("fig6_scala_dacapo", format_suite_report(report))
    assert report.geomean_speedup("dbds") > 0.0
    assert (
        report.geomean_code_size("dupalot")
        >= report.geomean_code_size("dbds") - 1e-6
    )
    assert report.geomean_speedup("dbds") >= report.geomean_speedup("dupalot") - 5.0
