"""Lowering: SSA IR → LIR over virtual registers.

Every value-producing instruction gets a virtual register; constants
become immediates at their use sites.  Phis produce registers too, but
no code at the merge: each predecessor edge ends with the corresponding
*parallel move set*, sequentialized with the classic cycle-breaking
algorithm (a swap of two phis must not clobber either source).

The IR's critical-edge invariant guarantees all phi moves sit before
``Goto`` terminators, so no edge splitting is needed at this level.
"""

from __future__ import annotations

from typing import Optional

from ..ir.block import Block
from ..ir.cfgutils import reverse_post_order
from ..ir.graph import Graph, Program
from ..ir.nodes import (
    ArithOp,
    ArrayLength,
    ArrayLoad,
    ArrayStore,
    Call,
    Compare,
    Constant,
    Goto,
    If,
    Instruction,
    LoadField,
    LoadGlobal,
    Neg,
    New,
    NewArray,
    Not,
    Parameter,
    Phi,
    Return,
    StoreField,
    StoreGlobal,
    Value,
)
from ..ir.types import VOID
from .lir import (
    Immediate,
    LirArrayLength,
    LirArrayLoad,
    LirArrayStore,
    LirBinOp,
    LirBlock,
    LirBranch,
    LirCall,
    LirCmp,
    LirFunction,
    LirInstruction,
    LirJump,
    LirLoadField,
    LirLoadGlobal,
    LirMove,
    LirNeg,
    LirNewArray,
    LirNewObject,
    LirNot,
    LirProgram,
    LirReturn,
    LirStoreField,
    LirStoreGlobal,
    Operand,
    VReg,
    fresh_vreg,
)


class LoweringError(Exception):
    """The IR cannot be lowered (broken invariant)."""


def lower_program(program: Program) -> LirProgram:
    """Lower every function of a program."""
    lir = LirProgram(class_table=program.class_table, globals=dict(program.globals))
    for name, graph in program.functions.items():
        lir.functions[name] = lower_graph(graph)
    return lir


def lower_graph(graph: Graph) -> LirFunction:
    return _Lowerer(graph).run()


class _Lowerer:
    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.order = reverse_post_order(graph)
        self.block_ids: dict[Block, int] = {b: i for i, b in enumerate(self.order)}
        self.vregs: dict[Value, VReg] = {}
        self.function = LirFunction(
            name=graph.name,
            param_regs=[],
            entry=0,
        )

    # ------------------------------------------------------------------
    def run(self) -> LirFunction:
        for param in self.graph.parameters:
            vreg = fresh_vreg(param.param_name)
            self.vregs[param] = vreg
            self.function.param_regs.append(vreg)
        # Pre-create registers for every value-producing instruction so
        # forward references (loop phis) resolve.
        for block in self.order:
            for phi in block.phis:
                self.vregs[phi] = fresh_vreg(f"phi{phi.id}")
            for ins in block.instructions:
                if ins.type != VOID:
                    self.vregs[ins] = fresh_vreg()

        # Create all blocks first so forward jumps can link immediately.
        for block in self.order:
            block_id = self.block_ids[block]
            self.function.blocks[block_id] = LirBlock(id=block_id)
        for block in self.order:
            lir_block = self.function.blocks[self.block_ids[block]]
            for ins in block.instructions:
                lir_block.instructions.extend(self._lower_instruction(ins))
            self._lower_terminator(block, lir_block)
        self.function.register_count = len(self.vregs)
        return self.function

    # ------------------------------------------------------------------
    def _operand(self, value: Value) -> Operand:
        if isinstance(value, Constant):
            return Immediate(value.value)
        try:
            return self.vregs[value]
        except KeyError:  # pragma: no cover - verifier catches earlier
            raise LoweringError(f"no register for {value!r}")

    def _lower_instruction(self, ins: Instruction) -> list[LirInstruction]:
        op = self._operand
        if isinstance(ins, ArithOp):
            return [LirBinOp(ins.op, self.vregs[ins], op(ins.x), op(ins.y))]
        if isinstance(ins, Compare):
            return [LirCmp(ins.op, self.vregs[ins], op(ins.x), op(ins.y))]
        if isinstance(ins, Not):
            return [LirNot(self.vregs[ins], op(ins.input(0)))]
        if isinstance(ins, Neg):
            return [LirNeg(self.vregs[ins], op(ins.input(0)))]
        if isinstance(ins, New):
            return [LirNewObject(self.vregs[ins], ins.object_type.class_name)]
        if isinstance(ins, LoadField):
            return [LirLoadField(self.vregs[ins], op(ins.obj), ins.field)]
        if isinstance(ins, StoreField):
            return [LirStoreField(op(ins.obj), ins.field, op(ins.value))]
        if isinstance(ins, LoadGlobal):
            return [LirLoadGlobal(self.vregs[ins], ins.global_name)]
        if isinstance(ins, StoreGlobal):
            return [LirStoreGlobal(ins.global_name, op(ins.value))]
        if isinstance(ins, NewArray):
            return [
                LirNewArray(self.vregs[ins], ins.element_type, op(ins.length))
            ]
        if isinstance(ins, ArrayLoad):
            return [LirArrayLoad(self.vregs[ins], op(ins.array), op(ins.index))]
        if isinstance(ins, ArrayStore):
            return [
                LirArrayStore(op(ins.array), op(ins.index), op(ins.value))
            ]
        if isinstance(ins, ArrayLength):
            return [LirArrayLength(self.vregs[ins], op(ins.array))]
        if isinstance(ins, Call):
            dst = self.vregs.get(ins)
            return [LirCall(dst, ins.callee, [op(a) for a in ins.args])]
        raise LoweringError(f"cannot lower {type(ins).__name__}")

    # ------------------------------------------------------------------
    def _lower_terminator(self, block: Block, lir_block: LirBlock) -> None:
        term = block.terminator
        if isinstance(term, Return):
            lir_block.instructions.append(
                LirReturn(self._operand(term.value) if term.value is not None else None)
            )
            return
        if isinstance(term, Goto):
            self._emit_phi_moves(block, term.target, lir_block)
            target = self.block_ids[term.target]
            lir_block.instructions.append(LirJump(target))
            lir_block.successors.append(target)
            self._link(lir_block.id, target)
            return
        if isinstance(term, If):
            for succ in term.targets:
                if succ.phis:
                    raise LoweringError(
                        "critical edge: branch target has phis "
                        f"({block.name} -> {succ.name})"
                    )
            true_id = self.block_ids[term.true_target]
            false_id = self.block_ids[term.false_target]
            lir_block.instructions.append(
                LirBranch(self._operand(term.condition), true_id, false_id)
            )
            lir_block.successors.extend([true_id, false_id])
            self._link(lir_block.id, true_id)
            self._link(lir_block.id, false_id)
            return
        raise LoweringError(f"unknown terminator {term!r}")

    def _link(self, pred_id: int, succ_id: int) -> None:
        self.function.blocks[succ_id].predecessors.append(pred_id)

    # ------------------------------------------------------------------
    def _emit_phi_moves(self, pred: Block, merge: Block, lir_block: LirBlock) -> None:
        if not merge.phis:
            return
        index = merge.predecessor_index(pred)
        moves = [
            (self.vregs[phi], self._operand(phi.input(index)))
            for phi in merge.phis
        ]
        lir_block.instructions.extend(sequentialize_parallel_moves(moves))


def sequentialize_parallel_moves(
    moves: list[tuple[VReg, Operand]],
) -> list[LirInstruction]:
    """Order a parallel move set so no source is clobbered early.

    The classic algorithm: emit moves whose destination is not pending
    as a source; when only cycles remain, break one via a temporary.
    """
    pending = [(dst, src) for dst, src in moves if dst != src]
    out: list[LirInstruction] = []
    while pending:
        safe_index = next(
            (
                i
                for i, (dst, _) in enumerate(pending)
                if not any(src == dst for _, src in pending)
            ),
            None,
        )
        if safe_index is not None:
            dst, src = pending.pop(safe_index)
            out.append(LirMove(dst, src))
            continue
        # Only cycles remain: park one source in a temporary, which
        # unblocks the move that wanted to overwrite it.
        _, blocked_src = pending[0]
        temp = fresh_vreg("cycle")
        out.append(LirMove(temp, blocked_src))
        pending = [
            (dst, temp if src == blocked_src else src) for dst, src in pending
        ]
    return out
