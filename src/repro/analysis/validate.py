"""Translation validation: differential execution across configurations.

The strongest correctness signal available for a duplication-based
optimizer: compile the same source twice (DBDS off / DBDS on), run
both through the reference interpreter on concrete inputs, and demand
identical observable outcomes (return value or trap, plus the global
state).  :func:`fuzz_translation` drives this with generated programs
from :mod:`repro.analysis.progen`, which is how the ``repro check
--fuzz`` verb and the CI fuzz job catch miscompiles that no static
invariant can see.

Pipeline imports are deferred into the functions: this module is part
of :mod:`repro.analysis`, which the optimization framework itself
imports for phase guarding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from .progen import mutated_program, random_program

#: entry argument values used when the caller does not supply arg sets
DEFAULT_ARG_VALUES = (0, 1, 2, 3, 7)

#: interpreter step budget used to screen mutants before differential
#: runs (a flipped branch can change how much work a program does)
SCREEN_STEP_BUDGET = 500_000


@dataclass(frozen=True)
class DivergenceRecord:
    """One input on which two configurations disagreed."""

    entry: str
    args: tuple
    config_a: str
    config_b: str
    outcome_a: tuple
    outcome_b: tuple
    #: generator seed when the program came from the fuzzer
    seed: Optional[int] = None

    def format(self) -> str:
        where = f"{self.entry}({', '.join(map(repr, self.args))})"
        source = f" [seed {self.seed}]" if self.seed is not None else ""
        return (
            f"{where}{source}: {self.config_a} -> {self.outcome_a!r} but "
            f"{self.config_b} -> {self.outcome_b!r}"
        )


@dataclass
class ValidationResult:
    """Outcome of validating one program across configurations."""

    entry: str
    configs: list[str] = field(default_factory=list)
    runs: int = 0
    divergences: list[DivergenceRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _outcomes(program, entry: str, arg_sets: list[list[Any]]) -> list[tuple]:
    from ..interp.interpreter import Interpreter, observable_outcome

    interpreter = Interpreter(program)
    results = []
    for args in arg_sets:
        interpreter.reset()
        result = interpreter.run(entry, list(args))
        results.append(observable_outcome(result, interpreter.state))
    return results


def validate_translation(
    source: str,
    entry: str = "main",
    arg_sets: Optional[Iterable[Sequence[Any]]] = None,
    configs: Optional[Sequence] = None,
    seed: Optional[int] = None,
) -> ValidationResult:
    """Compile ``source`` under each configuration and compare runs.

    The first configuration is the reference (defaults: baseline vs.
    DBDS); every other configuration's observable outcomes must match
    it on every argument set.
    """
    from ..pipeline.compiler import compile_and_profile
    from ..pipeline.config import BASELINE, DBDS

    if configs is None:
        configs = (BASELINE, DBDS)
    sets = [list(args) for args in (arg_sets or [[v] for v in DEFAULT_ARG_VALUES])]
    result = ValidationResult(entry=entry, configs=[c.name for c in configs])

    per_config: list[tuple[str, list[tuple]]] = []
    for config in configs:
        program, _ = compile_and_profile(source, entry, sets, config)
        per_config.append((config.name, _outcomes(program, entry, sets)))
        result.runs += len(sets)

    reference_name, reference = per_config[0]
    for name, outcomes in per_config[1:]:
        for args, expected, actual in zip(sets, reference, outcomes):
            if actual != expected:
                result.divergences.append(
                    DivergenceRecord(
                        entry=entry,
                        args=tuple(args),
                        config_a=reference_name,
                        config_b=name,
                        outcome_a=expected,
                        outcome_b=actual,
                        seed=seed,
                    )
                )
    return result


@dataclass
class FuzzReport:
    """Aggregate of one translation-validation fuzz session."""

    programs: int = 0
    runs: int = 0
    elapsed: float = 0.0
    divergences: list[DivergenceRecord] = field(default_factory=list)
    #: seeds whose compilation itself crashed, with the error text
    compile_failures: list[tuple[int, str]] = field(default_factory=list)
    #: mutants screened out (step-budget / recursion blowups), not failures
    skipped: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.compile_failures

    def format(self) -> str:
        status = "ok" if self.ok else "FAILED"
        skipped = f", {self.skipped} skipped" if self.skipped else ""
        lines = [
            f"translation validation: {status} — {self.programs} programs, "
            f"{self.runs} runs in {self.elapsed:.1f}s{skipped}"
        ]
        for seed, message in self.compile_failures:
            lines.append(f"  seed {seed}: compile error: {message}")
        for record in self.divergences:
            lines.append(f"  {record.format()}")
        return "\n".join(lines)


def fuzz_translation(
    seed: int = 0,
    programs: int = 20,
    time_budget: Optional[float] = None,
    configs: Optional[Sequence] = None,
    arg_values: Sequence[int] = DEFAULT_ARG_VALUES,
) -> FuzzReport:
    """Validate ``programs`` generated programs starting at ``seed``.

    A ``time_budget`` (seconds) bounds the session for CI: generation
    stops early once the budget is spent, however many programs ran.
    """
    report = FuzzReport()
    start = time.perf_counter()
    arg_sets = [[value] for value in arg_values]
    for index in range(programs):
        if time_budget is not None and time.perf_counter() - start > time_budget:
            break
        program_seed = seed + index
        source = random_program(program_seed)
        try:
            result = validate_translation(
                source, "main", arg_sets, configs, seed=program_seed
            )
        except Exception as exc:  # compile crash: also a fuzz finding
            report.compile_failures.append(
                (program_seed, f"{type(exc).__name__}: {exc}")
            )
            report.programs += 1
            continue
        report.programs += 1
        report.runs += result.runs
        report.divergences.extend(result.divergences)
    report.elapsed = time.perf_counter() - start
    return report


# ----------------------------------------------------------------------
# Engine differential mode: the full execution-engine cross-product
# ----------------------------------------------------------------------
def validate_engines(
    source: str,
    entry: str = "main",
    arg_sets: Optional[Iterable[Sequence[Any]]] = None,
    config: Optional[Any] = None,
    seed: Optional[int] = None,
    engines: Optional[Sequence[str]] = None,
) -> ValidationResult:
    """Compile once, execute on every engine, demand exact agreement.

    Where :func:`validate_translation` compares two *compilations* on
    one engine, this compares all *engines* on one compilation — the
    check that the bytecode VM (fused/quickened and flat-tuple alike)
    and the closure engine are faithful implementations of the
    reference semantics.  Agreement is stricter than observable
    outcome: step counts and metered cycles must match too, since the
    VM engines advertise step/cycle parity.  Every engine is compared
    against the reference, which by transitivity covers every engine
    pair.  ``engines`` defaults to the full matrix — ``reference``,
    ``vm``, ``vm-nofuse``, ``closure``, the whole-program ``megaunit``
    unit and the adaptive ``tiered`` machine (which must agree even as
    it promotes mid-sweep).
    """
    from ..interp.interpreter import observable_outcome
    from ..pipeline.compiler import ALL_ENGINES, compile_and_profile, make_engine
    from ..pipeline.config import DBDS
    from ..vm import translate_program

    if config is None:
        config = DBDS
    if engines is None:
        engines = ALL_ENGINES
    sets = [list(args) for args in (arg_sets or [[v] for v in DEFAULT_ARG_VALUES])]
    result = ValidationResult(entry=entry, configs=list(engines))
    program, _ = compile_and_profile(source, entry, sets, config)
    bytecode = translate_program(program)
    runners = [
        (name, make_engine(name, program, bytecode=bytecode))
        for name in engines
    ]

    def outcome(runner, args) -> tuple:
        runner.reset()
        run = runner.run(entry, list(args))
        result.runs += 1
        return (observable_outcome(run, runner.state), run.steps, run.cycles)

    reference_name, reference = runners[0]
    for args in sets:
        expected = outcome(reference, args)
        for name, runner in runners[1:]:
            actual = outcome(runner, args)
            if actual != expected:
                result.divergences.append(
                    DivergenceRecord(
                        entry=entry,
                        args=tuple(args),
                        config_a=reference_name,
                        config_b=name,
                        outcome_a=expected,
                        outcome_b=actual,
                        seed=seed,
                    )
                )
    return result


def fuzz_engines(
    seed: int = 0,
    programs: int = 20,
    time_budget: Optional[float] = None,
    config: Optional[Any] = None,
    corpus: Optional[Sequence[str]] = None,
    arg_values: Sequence[int] = DEFAULT_ARG_VALUES,
    mutations: int = 2,
    screen_steps: int = SCREEN_STEP_BUDGET,
) -> FuzzReport:
    """Engine-validate ``programs`` mutants of real sources.

    The mutation machinery of :func:`fuzz_mutations` pointed at the
    engine oracle: every surviving mutant is compiled once and must
    behave identically on the reference interpreter and every VM
    engine (fused/quickened, flat-tuple and closure-compiled).
    """
    report = FuzzReport()
    start = time.perf_counter()
    corpus = list(corpus) if corpus else None
    arg_sets = [[value] for value in arg_values]
    for index in range(programs):
        if time_budget is not None and time.perf_counter() - start > time_budget:
            break
        mutant_seed = seed + index
        mutant = mutated_program(mutant_seed, corpus, mutations=mutations)
        label = f"{mutant.base}: {', '.join(mutant.applied) or 'unchanged'}"
        report.programs += 1
        try:
            if not _screen_mutant(mutant.source, "main", arg_sets, screen_steps):
                report.skipped += 1
                continue
            result = validate_engines(
                mutant.source, "main", arg_sets, config, seed=mutant_seed
            )
        except Exception as exc:  # compile/translate crash: a finding
            report.compile_failures.append(
                (mutant_seed, f"[{label}] {type(exc).__name__}: {exc}")
            )
            continue
        report.runs += result.runs
        report.divergences.extend(result.divergences)
    report.elapsed = time.perf_counter() - start
    return report


# ----------------------------------------------------------------------
# Mutation-based fuzzing over real programs
# ----------------------------------------------------------------------
def _screen_mutant(
    source: str, entry: str, arg_sets: list[list[Any]], max_steps: int
) -> bool:
    """True when the unoptimized mutant terminates within the step
    budget on every argument set (traps count as terminating)."""
    from ..frontend.irbuilder import compile_source
    from ..interp.interpreter import BudgetExceeded, Interpreter

    program = compile_source(source)
    interpreter = Interpreter(program, max_steps=max_steps)
    for args in arg_sets:
        interpreter.reset()
        try:
            interpreter.run(entry, list(args))
        except (BudgetExceeded, RecursionError):
            return False
    return True


def fuzz_mutations(
    seed: int = 0,
    programs: int = 20,
    time_budget: Optional[float] = None,
    configs: Optional[Sequence] = None,
    corpus: Optional[Sequence[str]] = None,
    arg_values: Sequence[int] = DEFAULT_ARG_VALUES,
    mutations: int = 2,
    screen_steps: int = SCREEN_STEP_BUDGET,
) -> FuzzReport:
    """Translation-validate ``programs`` mutants of real sources.

    Template-extraction-style fuzzing: each seed picks a program from
    ``corpus`` (e.g. the ``examples/apps`` sources — ``repro check
    --fuzz-mutations`` passes the checked files) and applies up to
    ``mutations`` operators from :mod:`repro.analysis.progen` (swap
    constants, flip ``if`` comparisons, wrap loop bodies).  Without a
    corpus, generated programs are mutated instead.

    Mutants whose *unoptimized* run exceeds ``screen_steps``
    interpreter steps (a flipped guard can unbound recursion or
    inflate a workload) are counted as ``skipped``, not failures —
    differential comparison needs both sides to terminate.  A
    ``time_budget`` (seconds) bounds the session for CI.
    """
    report = FuzzReport()
    start = time.perf_counter()
    corpus = list(corpus) if corpus else None
    arg_sets = [[value] for value in arg_values]
    for index in range(programs):
        if time_budget is not None and time.perf_counter() - start > time_budget:
            break
        mutant_seed = seed + index
        mutant = mutated_program(mutant_seed, corpus, mutations=mutations)
        label = f"{mutant.base}: {', '.join(mutant.applied) or 'unchanged'}"
        report.programs += 1
        try:
            if not _screen_mutant(mutant.source, "main", arg_sets, screen_steps):
                report.skipped += 1
                continue
            result = validate_translation(
                mutant.source, "main", arg_sets, configs, seed=mutant_seed
            )
        except Exception as exc:  # compile crash: also a fuzz finding
            report.compile_failures.append(
                (mutant_seed, f"[{label}] {type(exc).__name__}: {exc}")
            )
            continue
        report.runs += result.runs
        report.divergences.extend(result.divergences)
    report.elapsed = time.perf_counter() - start
    return report
