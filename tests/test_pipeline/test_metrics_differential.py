"""Differential metrics test: serial vs parallel batches must fold to
identical metric totals.

Each ``compile_batch`` worker runs under its own registry and returns a
snapshot; the parent merges them into the ambient registry.  Since
merging is commutative and every job does the same work regardless of
scheduling, a ``jobs=1`` batch and a ``jobs=4`` batch must agree on
every **counter** value and every **histogram observation count**.
Histogram bucket placements and sums are wall-clock (they differ
run-to-run by construction) and gauges are point-in-time peaks, so
neither is compared here beyond the peak-queue-depth invariant.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.pipeline.batch import BatchOptions, compile_batch

EXAMPLES = sorted(pathlib.Path("examples").rglob("*.mini"))

#: identical small workload on both sides (same trick as
#: test_batch_differential)
PROFILE_ARGS = (4,)


def batch_snapshot(jobs: int):
    registry = MetricsRegistry()
    options = BatchOptions(jobs=jobs, args=PROFILE_ARGS)
    with use_registry(registry):
        report = compile_batch(EXAMPLES, options)
    assert report.ok
    return registry.snapshot()


@pytest.fixture(scope="module")
def serial_and_parallel():
    return batch_snapshot(jobs=1), batch_snapshot(jobs=4)


def test_counter_totals_identical(serial_and_parallel):
    serial, parallel = serial_and_parallel
    assert serial.counters == parallel.counters
    # and the families we specifically instrument all showed up
    assert parallel.counter_value(
        "repro_batch_jobs_total", outcome="compiled"
    ) == len(EXAMPLES)
    assert parallel.counter_value("repro_compile_units_total") > 0
    assert parallel.counter_total("repro_dbds_decisions_total") > 0


def test_histogram_observation_counts_identical(serial_and_parallel):
    serial, parallel = serial_and_parallel
    assert set(serial.histograms) == set(parallel.histograms)
    for name in serial.histograms:
        assert serial.histogram_counts(name) == parallel.histogram_counts(
            name
        ), f"observation-count drift in {name}"
    assert parallel.histogram_count("repro_batch_job_seconds") == len(EXAMPLES)


def test_queue_depth_gauge_reports_peak(serial_and_parallel):
    serial, parallel = serial_and_parallel
    assert serial.gauge_value("repro_batch_queue_depth") == len(EXAMPLES)
    assert parallel.gauge_value("repro_batch_queue_depth") == len(EXAMPLES)
