"""An executor for LIR: the back end's correctness oracle.

Runs lowered functions — before or after register allocation (operands
are virtual registers, physical registers or stack slots; all are
hashable keys into the frame) — with the same trap semantics as the IR
interpreter, so whole-backend differential tests are one comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..ir.ops import EvaluationTrap, eval_binop, eval_cmp, wrap64
from ..interp.interpreter import HeapArray, HeapObject
from .lir import (
    Immediate,
    LirArrayLength,
    LirArrayLoad,
    LirArrayStore,
    LirBinOp,
    LirBranch,
    LirCall,
    LirCmp,
    LirFunction,
    LirJump,
    LirLoadField,
    LirLoadGlobal,
    LirMove,
    LirNeg,
    LirNewArray,
    LirNewObject,
    LirNot,
    LirProgram,
    LirReturn,
    LirStoreField,
    LirStoreGlobal,
    Operand,
)


class MachineBudgetExceeded(Exception):
    """The machine hit its step budget."""


@dataclass
class MachineResult:
    value: Any = None
    trap: Optional[str] = None
    steps: int = 0

    @property
    def trapped(self) -> bool:
        return self.trap is not None


@dataclass
class Machine:
    """Executes a :class:`LirProgram`."""

    program: LirProgram
    max_steps: int = 50_000_000
    max_call_depth: int = 200
    globals: dict[str, Any] = field(default_factory=dict)
    _steps: int = 0
    _depth: int = 0

    def __post_init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.globals = {
            name: ty.default_value() for name, ty in self.program.globals.items()
        }
        self._steps = 0
        self._depth = 0

    # ------------------------------------------------------------------
    def run(self, function: str, args: list[Any]) -> MachineResult:
        try:
            value = self._call(self.program.function(function), args)
            return MachineResult(value=value, steps=self._steps)
        except EvaluationTrap as trap:
            return MachineResult(trap=str(trap), steps=self._steps)

    def _call(self, function: LirFunction, args: list[Any]) -> Any:
        if len(args) != len(function.param_regs):
            raise TypeError(
                f"{function.name} expects {len(function.param_regs)} args"
            )
        self._depth += 1
        try:
            if self._depth > self.max_call_depth:
                raise EvaluationTrap("stack overflow")
            return self._run_frame(function, args)
        finally:
            self._depth -= 1

    def _run_frame(self, function: LirFunction, args: list[Any]) -> Any:
        frame: dict[Operand, Any] = {}
        for reg, value in zip(function.param_regs, args):
            frame[reg] = value
        block = function.blocks[function.entry]
        index = 0
        while True:
            self._steps += 1
            if self._steps > self.max_steps:
                raise MachineBudgetExceeded(
                    f"exceeded {self.max_steps} machine steps"
                )
            ins = block.instructions[index]
            index += 1
            transfer = self._execute(ins, frame, function)
            if transfer is None:
                continue
            kind, payload = transfer
            if kind == "jump":
                block = function.blocks[payload]
                index = 0
            else:  # return
                return payload

    # ------------------------------------------------------------------
    def _value(self, operand: Operand, frame: dict) -> Any:
        if isinstance(operand, Immediate):
            return operand.value
        return frame[operand]

    def _execute(self, ins, frame: dict, function: LirFunction):
        val = self._value
        if isinstance(ins, LirMove):
            frame[ins.dst] = val(ins.src, frame)
            return None
        if isinstance(ins, LirBinOp):
            frame[ins.dst] = eval_binop(
                ins.op, val(ins.lhs, frame), val(ins.rhs, frame)
            )
            return None
        if isinstance(ins, LirCmp):
            frame[ins.dst] = eval_cmp(
                ins.op, val(ins.lhs, frame), val(ins.rhs, frame)
            )
            return None
        if isinstance(ins, LirNot):
            frame[ins.dst] = not val(ins.src, frame)
            return None
        if isinstance(ins, LirNeg):
            frame[ins.dst] = wrap64(-val(ins.src, frame))
            return None
        if isinstance(ins, LirNewObject):
            decl = self.program.class_table.lookup(ins.class_name)
            frame[ins.dst] = HeapObject(
                decl.name, {f.name: f.type.default_value() for f in decl.fields}
            )
            return None
        if isinstance(ins, LirLoadField):
            obj = val(ins.obj, frame)
            if obj is None:
                raise EvaluationTrap(f"null dereference reading .{ins.field_name}")
            frame[ins.dst] = obj.fields[ins.field_name]
            return None
        if isinstance(ins, LirStoreField):
            obj = val(ins.obj, frame)
            if obj is None:
                raise EvaluationTrap(f"null dereference writing .{ins.field_name}")
            obj.fields[ins.field_name] = val(ins.src, frame)
            return None
        if isinstance(ins, LirLoadGlobal):
            frame[ins.dst] = self.globals[ins.global_name]
            return None
        if isinstance(ins, LirStoreGlobal):
            self.globals[ins.global_name] = val(ins.src, frame)
            return None
        if isinstance(ins, LirNewArray):
            length = val(ins.length, frame)
            if length < 0:
                raise EvaluationTrap(f"negative array length {length}")
            frame[ins.dst] = HeapArray(
                [ins.element_type.default_value()] * length
            )
            return None
        if isinstance(ins, LirArrayLoad):
            array, idx = val(ins.array, frame), val(ins.index, frame)
            self._check_array(array, idx)
            frame[ins.dst] = array.values[idx]
            return None
        if isinstance(ins, LirArrayStore):
            array, idx = val(ins.array, frame), val(ins.index, frame)
            self._check_array(array, idx)
            array.values[idx] = val(ins.src, frame)
            return None
        if isinstance(ins, LirArrayLength):
            array = val(ins.array, frame)
            if array is None:
                raise EvaluationTrap("null dereference in len()")
            frame[ins.dst] = len(array.values)
            return None
        if isinstance(ins, LirCall):
            callee = self.program.function(ins.callee)
            result = self._call(callee, [val(a, frame) for a in ins.args])
            if ins.dst is not None:
                frame[ins.dst] = result
            return None
        if isinstance(ins, LirJump):
            return ("jump", ins.target)
        if isinstance(ins, LirBranch):
            taken = bool(val(ins.condition, frame))
            return ("jump", ins.true_target if taken else ins.false_target)
        if isinstance(ins, LirReturn):
            return ("return", val(ins.src, frame) if ins.src is not None else None)
        raise AssertionError(f"cannot execute {type(ins).__name__}")

    @staticmethod
    def _check_array(array: Any, index: Any) -> None:
        if array is None:
            raise EvaluationTrap("null array access")
        if not 0 <= index < len(array.values):
            raise EvaluationTrap(f"array index {index} out of bounds")
