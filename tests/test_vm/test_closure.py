"""The closure engine: compiled-block exactness and fallbacks.

``ClosureVirtualMachine`` compiles each translated function's basic
blocks to Python closures and accounts steps/cycles per segment, so
every observable — values, traps at exact step counts, budget stops
mid-segment, globals, reset — must match the reference interpreter
bit-for-bit, and hooked or legacy (no block spans) functions must fall
back to the machine loops transparently.
"""

import pytest

from repro.costmodel.model import cycles_of
from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import (
    BudgetExceeded,
    Interpreter,
    ProfileCollector,
    observable_outcome,
)
from repro.vm import ClosureVirtualMachine, translate_program
from repro.vm.closure import compile_function, function_source

APPS = {
    "nqueens": ("examples/apps/nqueens.mini", [6]),
    "wordfreq": ("examples/apps/wordfreq.mini", [120]),
    "matrix": ("examples/apps/matrix.mini", [8]),
}

LOOP = """
fn main(n: int) -> int {
  var h: int = 99;
  var i: int = 0;
  while (i < n) {
    h = (h * 31 + i) % 100003;
    i = i + 1;
  }
  return h;
}
"""


def engines_for(source: str, metered: bool = True, **kwargs):
    program = compile_source(source)
    reference = Interpreter(
        program,
        cycle_cost=cycles_of if metered else None,
        terminator_cost=cycles_of if metered else None,
        **{k: v for k, v in kwargs.items() if k != "max_steps"},
        max_steps=kwargs.get("max_steps", 50_000_000),
    )
    closure = ClosureVirtualMachine(
        translate_program(program), metered=metered, **kwargs
    )
    return reference, closure


# ----------------------------------------------------------------------
# Values, steps, cycles, traps
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(APPS))
def test_apps_value_step_cycle_parity(name):
    path, args = APPS[name]
    reference, closure = engines_for(open(path).read())
    ref = reference.run("main", list(args))
    out = closure.run("main", list(args))
    assert observable_outcome(ref, reference.state) == observable_outcome(
        out, closure.state
    )
    assert (ref.steps, ref.cycles) == (out.steps, out.cycles)


def test_unmetered_runs_skip_cycles_but_count_steps():
    reference, closure = engines_for(LOOP, metered=False)
    ref = reference.run("main", [57])
    out = closure.run("main", [57])
    assert (ref.value, ref.steps) == (out.value, out.steps)
    assert out.cycles == 0.0


@pytest.mark.parametrize(
    "source, label",
    [
        ("fn main(x: int) -> int { return 1 / x; }", "division by zero"),
        ("fn main(x: int) -> int { return 1 % x; }", "modulo by zero"),
        (
            """
            fn main(x: int) -> int {
              var a: int[] = new int[2];
              return a[x + 9];
            }
            """,
            "array index",
        ),
    ],
    ids=["div", "mod", "index"],
)
def test_trap_messages_and_accounting(source, label):
    reference, closure = engines_for(source)
    ref = reference.run("main", [0])
    out = closure.run("main", [0])
    assert ref.trap == out.trap and label in out.trap
    assert (ref.steps, ref.cycles) == (out.steps, out.cycles)


def test_mid_block_trap_flushes_partial_segment():
    # The trap site is preceded by several straight-line instructions
    # in the same segment; the flushed steps/cycles must include the
    # executed prefix only.
    source = """
    fn main(x: int) -> int {
      var a: int = x + 1;
      var b: int = a * 3;
      var c: int = b - x;
      return c / x;
    }
    """
    reference, closure = engines_for(source)
    ref = reference.run("main", [0])
    out = closure.run("main", [0])
    assert ref.trap == out.trap
    assert (ref.steps, ref.cycles) == (out.steps, out.cycles)


# ----------------------------------------------------------------------
# Budget stops (the segment guard's cold path)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("metered", [False, True], ids=["plain", "metered"])
def test_budget_stop_exact_at_every_cap(metered):
    program = compile_source(LOOP)
    bytecode = translate_program(program)
    total = ClosureVirtualMachine(bytecode).run("main", [9]).steps
    for cap in range(1, total + 2):
        reference = Interpreter(
            program,
            max_steps=cap,
            cycle_cost=cycles_of if metered else None,
            terminator_cost=cycles_of if metered else None,
        )
        closure = ClosureVirtualMachine(
            bytecode, max_steps=cap, metered=metered
        )
        ref_msg = clo_msg = None
        try:
            reference.run("main", [9])
        except BudgetExceeded as exc:
            ref_msg = str(exc)
        try:
            closure.run("main", [9])
        except BudgetExceeded as exc:
            clo_msg = str(exc)
        assert ref_msg == clo_msg
        assert reference.state.steps == closure.state.steps
        if metered:
            assert reference.state.cycles == closure.state.cycles


def test_changing_max_steps_recompiles_drivers():
    program = compile_source(LOOP)
    closure = ClosureVirtualMachine(translate_program(program), max_steps=50)
    with pytest.raises(BudgetExceeded):
        closure.run("main", [1000])
    closure.reset()
    closure.max_steps = 50_000_000
    assert closure.run("main", [10]).value is not None


# ----------------------------------------------------------------------
# Globals, reset, recursion
# ----------------------------------------------------------------------
def test_globals_and_reset():
    source = """
    global total: int;
    fn bump(v: int) -> int { total = total + v; return total; }
    fn main(x: int) -> int { bump(x); bump(x); return total; }
    """
    reference, closure = engines_for(source)
    assert closure.run("main", [5]).value == reference.run("main", [5]).value
    closure.reset()
    reference.reset()
    assert closure.run("main", [3]).value == reference.run("main", [3]).value


def test_recursion_and_stack_overflow():
    fib = """
    fn fib(n: int) -> int {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    fn main(x: int) -> int { return fib(x); }
    """
    reference, closure = engines_for(fib)
    ref = reference.run("main", [12])
    out = closure.run("main", [12])
    assert (ref.value, ref.steps, ref.cycles) == (out.value, out.steps, out.cycles)

    deep = "fn main(x: int) -> int { return main(x + 1); }"
    reference, closure = engines_for(deep)
    ref = reference.run("main", [0])
    out = closure.run("main", [0])
    assert ref.trap == out.trap == "stack overflow"
    assert ref.steps == out.steps


# ----------------------------------------------------------------------
# Fallbacks
# ----------------------------------------------------------------------
def test_profile_hook_falls_back_to_machine_loops():
    program = compile_source(LOOP)
    ref_profile, clo_profile = ProfileCollector(), ProfileCollector()
    Interpreter(program, profile=ref_profile).run("main", [9])
    ClosureVirtualMachine(
        translate_program(program), profile=clo_profile
    ).run("main", [9])
    assert ref_profile.block_counts == clo_profile.block_counts
    assert ref_profile.branch_counts == clo_profile.branch_counts


def test_observer_hook_falls_back_to_machine_loops():
    program = compile_source(LOOP)
    seen_ref, seen_clo = [], []
    Interpreter(program, observer=lambda i, v: seen_ref.append((i, v))).run(
        "main", [7]
    )
    ClosureVirtualMachine(
        translate_program(program),
        observer=lambda i, v: seen_clo.append((i, v)),
    ).run("main", [7])
    assert seen_ref == seen_clo


def test_legacy_function_without_blocks_falls_back():
    # A schema-v2 cache artifact has no block spans: not compilable,
    # but the engine still runs it through the machine loops.
    program = compile_source(LOOP)
    bytecode = translate_program(program)
    fn = bytecode.function("main")
    fn.blocks = ()
    assert compile_function(fn, True, 1000, 200) is None
    closure = ClosureVirtualMachine(bytecode, metered=True)
    reference = Interpreter(
        program, cycle_cost=cycles_of, terminator_cost=cycles_of
    )
    ref = reference.run("main", [21])
    out = closure.run("main", [21])
    assert (ref.value, ref.steps, ref.cycles) == (out.value, out.steps, out.cycles)


# ----------------------------------------------------------------------
# Generated source
# ----------------------------------------------------------------------
def test_function_source_is_real_python():
    program = compile_source(LOOP)
    fn = translate_program(program).function("main")
    src = function_source(fn)
    assert "def " in src and "_blk_" in src
    compile(src, "<closure-test>", "exec")  # must parse
