"""Full-evaluation report generation.

``generate_report`` runs every suite under the evaluation
configurations and renders one self-contained markdown document in the
spirit of the paper's Section 6 — per-suite tables, geometric means and
the headline aggregate.  Used by ``python -m repro evaluate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..pipeline.config import CompilerConfig, DBDS, DUPALOT
from .harness import SuiteReport, run_suite
from .stats import format_percent, geometric_mean
from .workloads.suites import ALL_SUITES, PAPER_SUITES, SuiteProfile


@dataclass
class EvaluationResult:
    """All suite reports of one evaluation run."""

    reports: dict[str, SuiteReport] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def headline(self, config: str = "dbds") -> dict[str, float]:
        speed, ctime, size = [], [], []
        best_name, best = "", float("-inf")
        for report in self.reports.values():
            for row in report.rows:
                s = row.speedup(config)
                speed.append(1 + s / 100)
                ctime.append(1 + row.compile_time_increase(config) / 100)
                size.append(1 + row.code_size_increase(config) / 100)
                if s > best:
                    best, best_name = s, f"{report.suite}/{row.workload}"
        return {
            "benchmarks": len(speed),
            "max_speedup": best,
            "max_speedup_benchmark": best_name,
            "mean_speedup": (geometric_mean(speed) - 1) * 100 if speed else 0.0,
            "mean_compile_time": (geometric_mean(ctime) - 1) * 100 if ctime else 0.0,
            "mean_code_size": (geometric_mean(size) - 1) * 100 if size else 0.0,
        }


def run_evaluation(
    suites: Optional[Iterable[str]] = None,
    configs: Optional[list[CompilerConfig]] = None,
    seed: int = 0,
) -> EvaluationResult:
    """Measure the requested suites (default: the four paper suites)."""
    names = list(suites) if suites is not None else list(PAPER_SUITES)
    configs = configs if configs is not None else [DBDS, DUPALOT]
    result = EvaluationResult()
    for name in names:
        result.reports[name] = run_suite(ALL_SUITES[name], configs, seed=seed)
    return result


def render_markdown(result: EvaluationResult) -> str:
    """One markdown document with every table of the evaluation."""
    lines = [
        "# DBDS evaluation report",
        "",
        "Peak performance is simulated cycles (higher % = faster than the",
        "duplication-disabled baseline); compile time and code size are",
        "increases over the baseline (lower is better). See EXPERIMENTS.md",
        "for the paper-vs-measured discussion.",
        "",
    ]
    for name, report in result.reports.items():
        lines.append(f"## Suite: {name}")
        lines.append("")
        header = "| benchmark |"
        divider = "|---|"
        for config in report.config_names:
            header += f" {config} perf | {config} ctime | {config} size |"
            divider += "---|---|---|"
        lines.append(header)
        lines.append(divider)
        for row in report.rows:
            cells = f"| {row.workload} |"
            for config in report.config_names:
                cells += (
                    f" {format_percent(row.speedup(config))} |"
                    f" {format_percent(row.compile_time_increase(config))} |"
                    f" {format_percent(row.code_size_increase(config))} |"
                )
            lines.append(cells)
        lines.append("")
        lines.append("Geometric means:")
        lines.append("")
        for config in report.config_names:
            lines.append(
                f"* **{config}** — perf "
                f"{format_percent(report.geomean_speedup(config))}, compile "
                f"time {format_percent(report.geomean_compile_time(config))}, "
                f"code size {format_percent(report.geomean_code_size(config))}"
            )
        lines.append("")

    headline = result.headline()
    lines += [
        "## Headline (paper: up to +40%, mean +5.89% / +18.44% / +9.93%)",
        "",
        f"* benchmarks measured: {headline['benchmarks']}",
        f"* max speedup: {format_percent(headline['max_speedup'])} "
        f"({headline['max_speedup_benchmark']})",
        f"* mean speedup: {format_percent(headline['mean_speedup'])}",
        f"* mean compile time: {format_percent(headline['mean_compile_time'])}",
        f"* mean code size: {format_percent(headline['mean_code_size'])}",
        "",
    ]
    return "\n".join(lines)
