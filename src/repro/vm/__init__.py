"""Register-based bytecode VM for optimized IR programs.

The reference interpreter (:mod:`repro.interp`) walks the SSA graph
instruction object by instruction object, so benchmark wall-clock is
dominated by Python dispatch overhead rather than by the work the
program does.  This package compiles a :class:`~repro.ir.graph.Program`
into flat, pre-decoded bytecode — dense register slots instead of a
``dict[Value, Any]`` environment, constants materialized at translation
time, phis lowered to per-edge parallel-copy move sequences, branch
targets resolved to instruction indices — and executes it with a
per-opcode handler table.

Four raw-speed layers sit on top of the flat-tuple machine:

* **superinstruction fusion** (:mod:`repro.vm.fusion`) rewrites hot
  adjacent opcode pairs into single combined instructions;
* **quickening** (:mod:`repro.vm.quicken`) specializes generic ops in
  place on first execution, with a deopt escape back to the generic
  form;
* the **closure engine** (:mod:`repro.vm.closure`) compiles each basic
  block to an ``exec``-generated Python closure chain and skips
  bytecode dispatch entirely;
* the **megaunit engine** (:mod:`repro.vm.megaunit`) compiles the
  whole call graph into one ``exec`` unit — registers in Python
  locals, threaded intra-function dispatch, ``OP_CALL`` as a direct
  Python call (``--engine=megaunit``).

:mod:`repro.vm.tiering` composes the layers adaptively: the tiered
engine starts every function in the unfused baseline translation with
hotness counters and promotes hot functions to the fused/quickened
fast stream at run time (``--engine=tiered``; see docs/TIERING.md).

Semantics are bit-for-bit those of the reference interpreter: shared
heap/trap/outcome types, identical trap messages, identical step
accounting and budget behaviour, identical :class:`ProfileCollector`
and observer hooks.  ``repro check --diff-engines`` and the
``tests/test_vm`` differential suite enforce this; see docs/VM.md.

Import order below is load-bearing: :mod:`repro.vm.fusion` and
:mod:`repro.vm.quicken` register their extended opcodes into
``machine.XHANDLERS`` at import time, so importing them in a fixed
order right after :mod:`repro.vm.machine` pins the extended opcode
numbers — cached artifacts that pickle fused/quickened streams decode
identically in every process.
"""

from .bytecode import BytecodeFunction, BytecodeProgram, disassemble
from .machine import VirtualMachine, fast_op_bindings, register_xop
from .opspec import OPCODE_SPECS, OpSpec, register_opspec
from .fusion import fuse_function, fuse_program, mine_hot_pairs
from .quicken import quicken_function
from .closure import ClosureVirtualMachine, compile_function, function_source
from .megaunit import (
    MegaunitModule,
    MegaunitVirtualMachine,
    generate_module_source,
)
from .profiler import ProfilingVirtualMachine, VMProfile, profile_run
from .translate import translate_graph, translate_program
from .tiering import (
    DEFAULT_TIER2_THRESHOLD,
    DEFAULT_TIER_THRESHOLD,
    TieredVirtualMachine,
    TieringController,
    TieringPolicy,
)

__all__ = [
    "DEFAULT_TIER2_THRESHOLD",
    "DEFAULT_TIER_THRESHOLD",
    "BytecodeFunction",
    "BytecodeProgram",
    "ClosureVirtualMachine",
    "MegaunitModule",
    "MegaunitVirtualMachine",
    "OPCODE_SPECS",
    "OpSpec",
    "ProfilingVirtualMachine",
    "TieredVirtualMachine",
    "TieringController",
    "TieringPolicy",
    "VMProfile",
    "VirtualMachine",
    "compile_function",
    "disassemble",
    "fast_op_bindings",
    "function_source",
    "fuse_function",
    "fuse_program",
    "generate_module_source",
    "mine_hot_pairs",
    "profile_run",
    "quicken_function",
    "register_opspec",
    "register_xop",
    "translate_graph",
    "translate_program",
]
