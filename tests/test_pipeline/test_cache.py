"""Cache correctness: keying, hits, corruption recovery, concurrency."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.obs import Tracer, validate_record, event_to_dict
from repro.pipeline.batch import BatchOptions, compile_batch
from repro.pipeline.cache import (
    ArtifactCache,
    CacheEntry,
    artifact_manifest,
    cache_key,
    config_fingerprint,
    make_entry,
    normalize_ir,
)
from repro.pipeline.compiler import compile_and_profile
from repro.pipeline.config import BASELINE, DBDS

SOURCE = textwrap.dedent(
    """
    fn main(n: int) -> int {
      var acc: int = 0;
      var i: int = 0;
      while (i < n) {
        if (i > 2) { acc = acc + 2 * i; } else { acc = acc + 1; }
        i = i + 1;
      }
      return acc;
    }
    """
)


def compiled_entry(key: str):
    tracer = Tracer()
    program, report = compile_and_profile(SOURCE, "main", [[5]], DBDS, tracer=tracer)
    return make_entry(key, program, report, tracer.events, tracer.counters)


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def test_key_is_stable_for_identical_inputs():
    assert cache_key(SOURCE, DBDS, profile_args=[[5]]) == cache_key(
        SOURCE, DBDS, profile_args=[[5]]
    )


def test_key_misses_on_source_edit():
    edited = SOURCE.replace("acc + 1", "acc + 3")
    assert cache_key(SOURCE, DBDS) != cache_key(edited, DBDS)


def test_key_misses_on_config_change():
    assert cache_key(SOURCE, DBDS) != cache_key(SOURCE, BASELINE)
    tweaked = DBDS.with_trade_off(benefit_scale=128.0)
    assert cache_key(SOURCE, DBDS) != cache_key(SOURCE, tweaked)
    assert config_fingerprint(DBDS) != config_fingerprint(tweaked)


def test_key_misses_on_version_bump():
    assert cache_key(SOURCE, DBDS, version="1.0.0") != cache_key(
        SOURCE, DBDS, version="1.0.1"
    )


def test_key_misses_on_profile_args_and_check_mode():
    assert cache_key(SOURCE, DBDS, profile_args=[[5]]) != cache_key(
        SOURCE, DBDS, profile_args=[[7]]
    )
    assert cache_key(SOURCE, DBDS, check_ir="off") != cache_key(
        SOURCE, DBDS, check_ir="each-phase"
    )


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------
def test_normalize_ir_renumbers_values_only():
    dump = "entry:  preds=[]\n  v113 = Mul p1:row v9\n  If v113 ? b3 : b4"
    shifted = "entry:  preds=[]\n  v413 = Mul p1:row v309\n  If v413 ? b3 : b4"
    assert normalize_ir(dump) == normalize_ir(shifted)
    assert normalize_ir(dump) == (
        "entry:  preds=[]\n  v0 = Mul p1:row v1\n  If v0 ? b3 : b4"
    )


def test_manifest_independent_of_process_id_history():
    # Value IDs come from a process-global counter: compiling the same
    # source twice in one process yields different absolute vN names.
    # The manifest must cancel that out (this is what makes parallel
    # batches byte-identical to serial ones).
    tracer_a, tracer_b = Tracer(), Tracer()
    prog_a, rep_a = compile_and_profile(SOURCE, "main", [[5]], DBDS, tracer=tracer_a)
    prog_b, rep_b = compile_and_profile(SOURCE, "main", [[5]], DBDS, tracer=tracer_b)
    manifest_a = artifact_manifest(prog_a, rep_a, tracer_a.events)
    manifest_b = artifact_manifest(prog_b, rep_b, tracer_b.events)
    assert json.dumps(manifest_a, sort_keys=True) == json.dumps(
        manifest_b, sort_keys=True
    )


# ----------------------------------------------------------------------
# Hit / miss / round-trip
# ----------------------------------------------------------------------
def test_hit_after_identical_recompile(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = cache_key(SOURCE, DBDS, profile_args=[[5]])
    assert cache.get(key) is None
    entry = compiled_entry(key)
    cache.put(entry)

    again = cache.get(key)
    assert again is not None
    assert again.manifest == entry.manifest
    assert again.manifest["digest"] == entry.manifest["digest"]
    assert again.report.to_json() == entry.report.to_json()
    # The rehydrated program is executably identical.
    assert again.program().describe() == entry.program().describe()
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1


def test_cache_events_match_schema(tmp_path):
    cache = ArtifactCache(tmp_path)
    tracer = Tracer()
    key = cache_key(SOURCE, DBDS)
    cache.get(key, tracer)  # miss
    cache.put(compiled_entry(key), tracer)  # store
    cache.get(key, tracer)  # hit
    names = [e.name for e in tracer.events]
    assert names == ["cache.miss", "cache.store", "cache.hit"]
    for event in tracer.events:
        assert validate_record(event_to_dict(event)) == []
    assert tracer.counter("cache.hit") == 1
    assert tracer.counter("cache.miss") == 1


# ----------------------------------------------------------------------
# Corruption recovery
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "corruptor",
    [
        lambda raw: raw[: len(raw) // 2],            # truncated write
        lambda raw: b"garbage\n" + raw[8:],          # digest mismatch
        lambda raw: b"",                              # empty file
        lambda raw: raw.replace(b"\n", b"", 1),       # no digest header
    ],
    ids=["truncated", "digest-mismatch", "empty", "headerless"],
)
def test_corrupted_entry_falls_back_to_recompile(tmp_path, corruptor):
    cache = ArtifactCache(tmp_path)
    key = cache_key(SOURCE, DBDS, profile_args=[[5]])
    cache.put(compiled_entry(key))
    path = cache.path_for(key)
    path.write_bytes(corruptor(path.read_bytes()))

    tracer = Tracer()
    assert cache.get(key, tracer) is None
    assert not path.exists(), "corrupted entry must be deleted"
    assert cache.stats.evictions == 1
    evicts = [e for e in tracer.events if e.name == "cache.evict"]
    assert len(evicts) == 1
    assert evicts[0].attrs["reason"] == "corrupted entry"
    assert validate_record(event_to_dict(evicts[0])) == []

    # The driver recompiles and repopulates transparently.
    options = BatchOptions(config=DBDS, jobs=1, args=(5,), cache=cache)
    report = compile_batch([("mem.mini", SOURCE)], options)
    assert report.ok and report.compiled == 1
    assert cache.get(key) is not None


def test_wrong_key_payload_is_treated_as_corrupted(tmp_path):
    cache = ArtifactCache(tmp_path)
    key_a = cache_key(SOURCE, DBDS)
    key_b = cache_key(SOURCE, BASELINE)
    cache.put(compiled_entry(key_a))
    # Copy A's bytes over B's slot: digest is fine but the key inside
    # does not match the slot — must evict, not serve the wrong unit.
    path_b = cache.path_for(key_b)
    path_b.parent.mkdir(parents=True, exist_ok=True)
    path_b.write_bytes(cache.path_for(key_a).read_bytes())
    assert cache.get(key_b) is None
    assert cache.stats.evictions == 1


# ----------------------------------------------------------------------
# Concurrent writers: same key, no torn reads
# ----------------------------------------------------------------------
_WRITER = """
import sys
sys.path.insert(0, "src")
from repro.obs import Tracer
from repro.pipeline.cache import ArtifactCache, cache_key, make_entry
from repro.pipeline.compiler import compile_and_profile
from repro.pipeline.config import DBDS

source = open(sys.argv[2]).read()
cache = ArtifactCache(sys.argv[1])
key = cache_key(source, DBDS, profile_args=[[5]])
tracer = Tracer()
program, report = compile_and_profile(source, "main", [[5]], DBDS, tracer=tracer)
entry = make_entry(key, program, report, tracer.events, tracer.counters)
for _ in range(40):
    cache.put(entry)
print("done")
"""


def test_concurrent_writers_same_key(tmp_path):
    source_file = tmp_path / "prog.mini"
    source_file.write_text(SOURCE)
    cache_dir = tmp_path / "cache"
    env = dict(os.environ)

    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _WRITER, str(cache_dir), str(source_file)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        for _ in range(2)
    ]

    # Read continuously while both writers hammer the same key: every
    # read must be either a miss (nothing written yet) or a fully
    # valid entry — never a torn/corrupted one.
    cache = ArtifactCache(cache_dir)
    key = cache_key(SOURCE, DBDS, profile_args=[[5]])
    observed_hit = False
    while any(p.poll() is None for p in procs):
        entry = cache.get(key)
        if entry is not None:
            observed_hit = True
            assert entry.key == key
            assert entry.manifest["digest"]
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err.decode()
        assert b"done" in out
    assert cache.stats.evictions == 0, "a reader saw a torn write"

    final = cache.get(key)
    assert final is not None and final.key == key
    assert observed_hit or final is not None


# ----------------------------------------------------------------------
# Entry payload round-trip
# ----------------------------------------------------------------------
def test_entry_payload_round_trip(tmp_path):
    key = cache_key(SOURCE, DBDS)
    entry = compiled_entry(key)
    clone = CacheEntry.from_payload(entry.to_payload())
    assert clone.key == entry.key
    assert clone.manifest == entry.manifest
    assert clone.counters == entry.counters
    assert len(clone.events) == len(entry.events)
    assert json.dumps(clone.report.to_json()) == json.dumps(entry.report.to_json())
