"""Tests for conditional elimination."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter
from repro.ir import Graph, If, verify_graph
from repro.ir.nodes import Compare, Goto
from repro.ir.ops import CmpOp
from repro.ir.stamps import IntStamp, TRUE_STAMP
from repro.opts.condelim import (
    ConditionalEliminationPhase,
    FactScope,
    assume_condition,
)


def branch_count(graph) -> int:
    return sum(1 for b in graph.blocks if isinstance(b.terminator, If))


def compile_and_eliminate(source: str, name: str = "f"):
    program = compile_source(source)
    graph = program.function(name)
    ConditionalEliminationPhase().run(graph)
    verify_graph(graph)
    return program, graph


class TestFactScope:
    def test_scoped_refinement(self):
        facts = FactScope()
        from repro.ir import Graph as G, INT

        graph = G("f", [("x", INT)], INT)
        x = graph.parameters[0]
        facts.push_scope()
        facts.refine(x, IntStamp(0, 10))
        assert facts.stamp_of(x) == IntStamp(0, 10)
        facts.push_scope()
        facts.refine(x, IntStamp(5, 20))
        assert facts.stamp_of(x) == IntStamp(5, 10)  # joined
        facts.pop_scope()
        assert facts.stamp_of(x) == IntStamp(0, 10)
        facts.pop_scope()
        assert facts.stamp_of(x) == x.stamp

    def test_constants_not_refined(self):
        from repro.ir import Graph as G, INT

        graph = G("f", [], INT)
        facts = FactScope()
        facts.push_scope()
        facts.refine(graph.const_int(5), IntStamp(0, 0))
        assert facts.stamp_of(graph.const_int(5)) == IntStamp(5, 5)


class TestAssumeCondition:
    def test_compare_refines_ranges(self):
        from repro.ir import Graph as G, INT

        graph = G("f", [("x", INT)], INT)
        x = graph.parameters[0]
        cmp = Compare(CmpOp.GT, x, graph.const_int(12))
        facts = FactScope()
        facts.push_scope()
        assume_condition(facts, cmp, True)
        stamp = facts.stamp_of(x)
        assert stamp.lo == 13
        assert facts.stamp_of(cmp) == TRUE_STAMP

    def test_negated_compare(self):
        from repro.ir import Graph as G, INT

        graph = G("f", [("x", INT)], INT)
        x = graph.parameters[0]
        cmp = Compare(CmpOp.GT, x, graph.const_int(12))
        facts = FactScope()
        facts.push_scope()
        assume_condition(facts, cmp, False)
        assert facts.stamp_of(x).hi == 12

    def test_null_check_refines_object(self):
        src = "class A { x: int; }\nfn f(a: A) -> int { return 0; }"
        program = compile_source(src)
        graph = program.function("f")
        a = graph.parameters[0]
        null = graph.const_null(a.type)
        cmp = Compare(CmpOp.NE, a, null)
        facts = FactScope()
        facts.push_scope()
        assume_condition(facts, cmp, True)
        assert facts.stamp_of(a).non_null
        facts.pop_scope()
        facts.push_scope()
        assume_condition(facts, cmp, False)
        assert facts.stamp_of(a).always_null


class TestElimination:
    def test_same_condition_reused(self):
        _, graph = compile_and_eliminate(
            """
fn f(x: int) -> int {
  var r: int = 0;
  if (x > 0) { r = 1; } else { r = 2; }
  if (x > 0) { return r + 10; }
  return r;
}
"""
        )
        # The second x > 0 is decided per dominating branch... but it is
        # below the merge, so it is NOT decidable without duplication.
        assert branch_count(graph) == 2

    def test_dominated_implied_condition_folds(self):
        _, graph = compile_and_eliminate(
            """
fn f(x: int) -> int {
  if (x > 12) {
    if (x > 0) { return 1; }
    return 2;
  }
  return 3;
}
"""
        )
        assert branch_count(graph) == 1

    def test_dominated_contradiction_folds(self):
        program, graph = compile_and_eliminate(
            """
fn f(x: int) -> int {
  if (x < 0) {
    if (x > 10) { return 1; }
    return 2;
  }
  return 3;
}
"""
        )
        assert branch_count(graph) == 1
        assert Interpreter(program).run("f", [-5]).value == 2

    def test_equality_pins_value(self):
        program, graph = compile_and_eliminate(
            """
fn f(x: int) -> int {
  if (x == 7) {
    if (x > 5) { return 1; }
    return 2;
  }
  return 3;
}
"""
        )
        assert branch_count(graph) == 1
        assert Interpreter(program).run("f", [7]).value == 1

    def test_null_check_chain_folds(self):
        program, graph = compile_and_eliminate(
            """
class A { x: int; }
fn f(a: A) -> int {
  if (a != null) {
    if (a == null) { return 0 - 1; }
    return a.x;
  }
  return 0;
}
"""
        )
        assert branch_count(graph) == 1
        from repro.interp.interpreter import HeapObject

        assert Interpreter(program).run("f", [HeapObject("A", {"x": 9})]).value == 9
        assert Interpreter(program).run("f", [None]).value == 0

    def test_undecidable_kept(self):
        _, graph = compile_and_eliminate(
            """
fn f(x: int, y: int) -> int {
  if (x > 0) {
    if (y > 0) { return 1; }
    return 2;
  }
  return 3;
}
"""
        )
        assert branch_count(graph) == 2

    def test_semantics_preserved(self):
        source = """
fn f(x: int) -> int {
  var r: int = 0;
  if (x >= 10) {
    if (x >= 5) { r = r + 1; } else { r = r + 100; }
    if (x < 10) { r = r + 1000; }
  }
  if (x == 3) {
    if (x != 3) { r = r + 7777; }
    r = r + 3;
  }
  return r;
}
"""
        program = compile_source(source)
        expected = [Interpreter(program).run("f", [k]).value for k in range(-2, 15)]
        ConditionalEliminationPhase().run(program.function("f"))
        verify_graph(program.function("f"))
        actual = [Interpreter(program).run("f", [k]).value for k in range(-2, 15)]
        assert actual == expected

    def test_loop_bound_implies_body_condition(self):
        program, graph = compile_and_eliminate(
            """
fn f(n: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < 10) {
    if (i < 100) { s = s + 1; }
    i = i + 1;
  }
  return s;
}
"""
        )
        # Inside the loop body i < 10 holds, so i < 100 folds.
        assert branch_count(graph) == 1
        assert Interpreter(program).run("f", [0]).value == 10
