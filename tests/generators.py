"""Compatibility shim: the generator moved into the package so the
``repro check --fuzz`` CLI and the translation-validation harness can
use it (see :mod:`repro.analysis.progen`)."""

from repro.analysis.progen import ProgramGenerator, random_program

__all__ = ["ProgramGenerator", "random_program"]
