"""Tests for compile-profile aggregation over real compilations."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.obs import CompileProfile, Tracer, read_jsonl, write_jsonl
from repro.pipeline.compiler import Compiler
from repro.pipeline.config import CONFIGURATIONS, DBDS

SOURCE = """
fn helper(x: int) -> int {
  var p: int;
  if (x > 0) { p = x; } else { p = 0; }
  return 2 + p;
}
fn main(n: int) -> int {
  var acc: int = 0;
  var i: int = 0;
  while (i < n) { acc = acc + helper(i - 3); i = i + 1; }
  return acc;
}
"""

PIPELINE_PHASES = {
    "inlining",
    "canonicalize",
    "global-value-numbering",
    "loop-invariant-code-motion",
    "conditional-elimination",
    "read-elimination",
    "partial-escape-analysis",
    "dbds",
}


@pytest.fixture(scope="module")
def traced_compile():
    tracer = Tracer()
    program = compile_source(SOURCE)
    report = Compiler(DBDS, tracer=tracer).compile_program(program)
    return tracer, report


class TestCompileProfile:
    def test_every_pipeline_phase_profiled(self, traced_compile):
        tracer, _ = traced_compile
        profile = CompileProfile.from_tracer(tracer)
        assert PIPELINE_PHASES <= set(profile.phases)
        for phase in PIPELINE_PHASES:
            stat = profile.phases[phase]
            assert stat.count > 0
            assert stat.total >= 0.0
            assert stat.max_dur <= stat.total + 1e-12

    def test_functions_and_total(self, traced_compile):
        tracer, report = traced_compile
        profile = CompileProfile.from_tracer(tracer)
        assert set(profile.functions) == {"helper", "main"}
        assert profile.total_time > 0.0
        # Total compile time (inside spans) is close to the report's.
        assert profile.total_time == pytest.approx(
            report.total_compile_time, rel=0.5
        )

    def test_decision_breakdown_matches_counters(self, traced_compile):
        tracer, _ = traced_compile
        profile = CompileProfile.from_tracer(tracer)
        assert profile.accepted == tracer.counter("dbds.decision.accepted")
        rejected = (
            tracer.counter("dbds.decision.rejected")
            + tracer.counter("dbds.decision.invalidated")
        )
        assert profile.rejected == rejected
        assert profile.accepted > 0  # this program duplicates

    def test_applied_counters_surface(self, traced_compile):
        tracer, _ = traced_compile
        profile = CompileProfile.from_tracer(tracer)
        assert profile.applied  # at least one optimization attributed
        assert all(count > 0 for count in profile.applied.values())

    def test_survives_jsonl_round_trip(self, traced_compile, tmp_path):
        tracer, _ = traced_compile
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer, path)
        rebuilt = CompileProfile.from_events(read_jsonl(path))
        direct = CompileProfile.from_tracer(tracer)
        assert rebuilt.to_json() == direct.to_json()

    def test_format_mentions_phases_and_decisions(self, traced_compile):
        tracer, _ = traced_compile
        text = CompileProfile.from_tracer(tracer).format()
        assert "dbds" in text and "canonicalize" in text
        assert "decisions" in text

    def test_hottest_phases_sorted(self, traced_compile):
        tracer, _ = traced_compile
        profile = CompileProfile.from_tracer(tracer)
        totals = [s.total for s in profile.hottest_phases(20)]
        assert totals == sorted(totals, reverse=True)


class TestMetricsWiring:
    def test_unit_metrics_from_counters(self, traced_compile):
        """candidates/duplications come from tracer counters now."""
        tracer, report = traced_compile
        assert sum(u.candidates for u in report.units) == tracer.counter(
            "dbds.candidates"
        )
        assert sum(u.duplications for u in report.units) == tracer.counter(
            "dbds.duplications"
        )

    def test_untraced_compiler_metrics_identical(self, traced_compile):
        _, traced_report = traced_compile
        program = compile_source(SOURCE)
        plain_report = Compiler(DBDS).compile_program(program)
        for traced_unit, plain_unit in zip(traced_report.units, plain_report.units):
            assert traced_unit.candidates == plain_unit.candidates
            assert traced_unit.duplications == plain_unit.duplications
            assert traced_unit.code_size == plain_unit.code_size
        assert plain_report.units[0].phase_times == {}

    def test_backtracking_duplications_counted(self):
        program = compile_source(SOURCE)
        tracer = Tracer()
        report = Compiler(
            CONFIGURATIONS["backtracking"], tracer=tracer
        ).compile_program(program)
        assert report.total_duplications == tracer.counter("dbds.duplications")
        phases = {e.attrs.get("phase") for e in tracer.spans("phase")}
        assert "backtracking-duplication" in phases
