"""Language semantics: MiniLang programs against Python reference
implementations (wrapping arithmetic handled explicitly)."""

import pytest
from hypothesis import given, strategies as st

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter
from repro.ir.ops import wrap64

i64 = st.integers(min_value=-(2**62), max_value=2**62)


def run(source, entry, args):
    program = compile_source(source)
    return Interpreter(program).run(entry, args)


class TestAgainstReference:
    GCD = """
fn gcd(a: int, b: int) -> int {
  while (b != 0) {
    var t: int = b;
    b = a % b;
    a = t;
  }
  return a;
}
"""

    @given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=1, max_value=10**6))
    def test_gcd(self, a, b):
        import math

        assert run(self.GCD, "gcd", [a, b]).value == math.gcd(a, b)

    FIB = """
fn fib(n: int) -> int {
  var a: int = 0;
  var b: int = 1;
  var i: int = 0;
  while (i < n) {
    var t: int = a + b;
    a = b;
    b = t;
    i = i + 1;
  }
  return a;
}
"""

    @given(st.integers(min_value=0, max_value=50))
    def test_fib(self, n):
        def fib(k):
            a, b = 0, 1
            for _ in range(k):
                a, b = b, a + b
            return a

        assert run(self.FIB, "fib", [n]).value == fib(n)

    COLLATZ = """
fn steps(n: int) -> int {
  var count: int = 0;
  while (n != 1) {
    if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
    count = count + 1;
  }
  return count;
}
"""

    @given(st.integers(min_value=1, max_value=10_000))
    def test_collatz(self, n):
        def steps(k):
            c = 0
            while k != 1:
                k = k // 2 if k % 2 == 0 else 3 * k + 1
                c += 1
            return c

        assert run(self.COLLATZ, "steps", [n]).value == steps(n)

    SORT = """
fn sort3(a: int, b: int, c: int) -> int {
  // returns the median
  if (a > b) { var t: int = a; a = b; b = t; }
  if (b > c) { var t: int = b; b = c; c = t; }
  if (a > b) { var t: int = a; a = b; b = t; }
  return b;
}
"""

    @given(i64, i64, i64)
    def test_median(self, a, b, c):
        assert run(self.SORT, "sort3", [a, b, c]).value == sorted([a, b, c])[1]

    HASH = """
fn mix(x: int) -> int {
  x = x ^ (x >>> 33);
  x = x * 127;
  x = x ^ (x << 7);
  return x & 1048575;
}
"""

    @given(i64)
    def test_bit_mixing_wraps_like_java(self, x):
        def mix(v):
            v = wrap64(v ^ ((v & (2**64 - 1)) >> 33))
            v = wrap64(v * 127)
            v = wrap64(v ^ wrap64(v << 7))
            return v & 1048575

        assert run(self.HASH, "mix", [x]).value == mix(x)


class TestObjectSemantics:
    LINKED_LIST = """
class Node { value: int; next: Node; }

fn build(n: int) -> Node {
  var head: Node = null;
  var i: int = 0;
  while (i < n) {
    head = new Node { value = i, next = head };
    i = i + 1;
  }
  return head;
}

fn total(head: Node) -> int {
  var sum: int = 0;
  while (head != null) {
    sum = sum + head.value;
    head = head.next;
  }
  return sum;
}

fn main(n: int) -> int { return total(build(n)); }
"""

    @given(st.integers(min_value=0, max_value=50))
    def test_linked_list_sum(self, n):
        assert run(self.LINKED_LIST, "main", [n]).value == n * (n - 1) // 2

    SWAP = """
class Pair { a: int; b: int; }
fn swap(p: Pair) { var t: int = p.a; p.a = p.b; p.b = t; }
fn main(x: int, y: int) -> int {
  var p: Pair = new Pair { a = x, b = y };
  swap(p);
  swap(p);
  swap(p);
  return p.a * 1000 + p.b;
}
"""

    def test_mutation_through_calls(self):
        assert run(self.SWAP, "main", [1, 2]).value == 2001


class TestArraySemantics:
    REVERSE = """
fn rev_sum(n: int) -> int {
  var xs: int[] = new int[n];
  var i: int = 0;
  while (i < n) { xs[i] = i * i; i = i + 1; }
  // reverse in place
  var lo: int = 0;
  var hi: int = n - 1;
  while (lo < hi) {
    var t: int = xs[lo];
    xs[lo] = xs[hi];
    xs[hi] = t;
    lo = lo + 1;
    hi = hi - 1;
  }
  var weighted: int = 0;
  i = 0;
  while (i < n) { weighted = weighted + xs[i] * (i + 1); i = i + 1; }
  return weighted;
}
"""

    @given(st.integers(min_value=0, max_value=30))
    def test_reverse_weighted_sum(self, n):
        xs = [i * i for i in range(n)][::-1]
        expected = sum(v * (i + 1) for i, v in enumerate(xs))
        assert run(self.REVERSE, "rev_sum", [n]).value == expected
