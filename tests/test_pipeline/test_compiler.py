"""Tests for the compilation pipeline and its metrics."""

import dataclasses

import pytest

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter
from repro.ir import verify_program
from repro.pipeline.compiler import (
    Compiler,
    compile_and_profile,
    measure_performance,
)
from repro.pipeline.config import (
    BACKTRACKING,
    BASELINE,
    CONFIGURATIONS,
    DBDS,
    DUPALOT,
    CompilerConfig,
)

SOURCE = """
fn helper(x: int) -> int {
  var p: int;
  if (x > 0) { p = x; } else { p = 0; }
  return 2 + p;
}
fn main(n: int) -> int {
  var acc: int = 0;
  var i: int = 0;
  while (i < n) { acc = acc + helper(i - 3); i = i + 1; }
  return acc;
}
"""


class TestConfigurations:
    def test_registry_contains_paper_configs(self):
        assert set(CONFIGURATIONS) == {
            "baseline", "dbds", "dupalot", "backtracking", "path-dbds",
            "peel-dbds",
        }
        assert not BASELINE.enable_dbds
        assert DBDS.enable_dbds and not DBDS.dupalot
        assert DUPALOT.dupalot
        assert BACKTRACKING.backtracking

    def test_with_trade_off_override(self):
        custom = DBDS.with_trade_off(benefit_scale=16.0)
        assert custom.trade_off.benefit_scale == 16.0
        assert DBDS.trade_off.benefit_scale == 256.0  # original untouched

    def test_dbds_config_projection(self):
        config = DUPALOT.dbds_config()
        assert config.dupalot


class TestCompiler:
    def test_report_has_all_units(self):
        program = compile_source(SOURCE)
        report = Compiler(BASELINE).compile_program(program)
        assert {u.function for u in report.units} == {"helper", "main"}
        assert report.config == "baseline"

    def test_metrics_populated(self):
        program = compile_source(SOURCE)
        report = Compiler(DBDS).compile_program(program)
        for unit in report.units:
            assert unit.compile_time > 0
            assert unit.code_size > 0
            assert unit.initial_code_size > 0

    def test_dbds_records_duplications(self):
        program, report = compile_and_profile(
            SOURCE, "main", [[10]], DBDS
        )
        assert report.total_duplications > 0
        verify_program(program)

    def test_baseline_never_duplicates(self):
        program, report = compile_and_profile(SOURCE, "main", [[10]], BASELINE)
        assert report.total_duplications == 0

    def test_backtracking_rebinds_graph(self):
        program, report = compile_and_profile(SOURCE, "main", [[10]], BACKTRACKING)
        verify_program(program)
        assert Interpreter(program).run("main", [10]).value is not None

    def test_code_size_increase_property(self):
        program, report = compile_and_profile(SOURCE, "main", [[10]], DBDS)
        for unit in report.units:
            assert unit.code_size_increase == pytest.approx(
                unit.code_size / unit.initial_code_size - 1.0
            )


class TestMeasurePerformance:
    def test_cycles_positive_and_accumulating(self):
        program, _ = compile_and_profile(SOURCE, "main", [[10]], BASELINE)
        one, _ = measure_performance(program, "main", [[10]])
        two, _ = measure_performance(program, "main", [[10], [10]])
        assert one > 0
        assert two == pytest.approx(2 * one)

    def test_dbds_reduces_cycles(self):
        base_program, _ = compile_and_profile(SOURCE, "main", [[10]], BASELINE)
        dbds_program, _ = compile_and_profile(SOURCE, "main", [[10]], DBDS)
        base_cycles, _ = measure_performance(base_program, "main", [[30]])
        dbds_cycles, _ = measure_performance(dbds_program, "main", [[30]])
        assert dbds_cycles < base_cycles

    def test_results_carry_values(self):
        program, _ = compile_and_profile(SOURCE, "main", [[10]], BASELINE)
        _, results = measure_performance(program, "main", [[5]])
        interp_value = Interpreter(program).run("main", [5]).value
        assert results[0].value == interp_value
