"""A realistic JIT scenario: profile-guided compilation of an
"event stream processing" workload (the boxing-heavy pattern the paper's
introduction motivates for Java/Scala), compared across the evaluation
configurations baseline / DBDS / dupalot / backtracking.

Run:  python examples/jit_pipeline.py
"""

from repro import (
    BACKTRACKING,
    BASELINE,
    DBDS,
    DUPALOT,
    compile_and_profile,
    measure_performance,
)

# Events arrive as (kind, payload); boxing happens when a payload is
# normalized through an Option-like wrapper, and hot dispatch chains
# re-check the same conditions — DBDS's two favourite patterns.
SOURCE = """
class Event { kind: int; payload: int; }
class OptInt { present: bool; value: int; }

global processed: int;
global dropped: int;

fn normalize(raw: int) -> OptInt {
  var r: OptInt;
  if (raw >= 0) { r = new OptInt { present = true, value = raw }; }
  else { r = new OptInt { present = false, value = 0 }; }
  return r;
}

fn weight(kind: int) -> int {
  var w: int;
  if (kind == 0) { w = 1; } else { w = 4; }
  return w * 8;
}

fn handle(e: Event) -> int {
  if (e != null) {
    var opt: OptInt = normalize(e.payload);
    var score: int;
    if (opt.present) { score = opt.value; } else { score = 0; }
    if (e != null) {
      processed = processed + 1;
      return score * weight(e.kind) / 8;
    }
  }
  dropped = dropped + 1;
  return 0;
}

fn main(n: int) -> int {
  var total: int = 0;
  var i: int = 0;
  while (i < n) {
    var e: Event = null;
    if (i % 7 != 3) { e = new Event { kind = i % 2, payload = i - 5 }; }
    total = total + handle(e);
    i = i + 1;
  }
  return total;
}
"""

PROFILE_RUNS = [[40]]
MEASURE_RUNS = [[200]]


def main() -> None:
    print(f"{'config':<14s}{'cycles':>12s}{'speedup':>10s}{'code size':>11s}"
          f"{'compile ms':>12s}{'dups':>6s}")
    baseline_cycles = None
    for config in (BASELINE, DBDS, DUPALOT, BACKTRACKING):
        program, report = compile_and_profile(
            SOURCE, "main", PROFILE_RUNS, config
        )
        cycles, results = measure_performance(program, "main", MEASURE_RUNS)
        assert not results[0].trapped
        if baseline_cycles is None:
            baseline_cycles = cycles
        speedup = (baseline_cycles / cycles - 1) * 100
        print(
            f"{config.name:<14s}{cycles:>12.0f}{speedup:>+9.1f}%"
            f"{report.total_code_size:>11.0f}"
            f"{report.total_compile_time * 1e3:>12.2f}"
            f"{report.total_duplications:>6d}"
        )
    print()
    print("All configurations compute the same results; DBDS trades a")
    print("bounded amount of code size and compile time for speed, while")
    print("dupalot duplicates indiscriminately and backtracking burns")
    print("compile time on whole-graph copies (Section 3.1).")


if __name__ == "__main__":
    main()
