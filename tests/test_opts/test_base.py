"""Tests for the AC/action-step framework primitives."""

import pytest

from repro.ir import ArithOp, BinOp, Graph, INT, StoreGlobal
from repro.opts.base import OptimizationContext, Rewrite


@pytest.fixture
def graph():
    return Graph("f", [("x", INT)], INT)


class TestRewrite:
    def test_remove_constructor(self):
        r = Rewrite.remove("dead-store")
        assert r.replacement is None
        assert r.new_instructions == []
        assert r.reason == "dead-store"

    def test_redundant_constructor(self, graph):
        x = graph.parameters[0]
        r = Rewrite.redundant(x, "gvn")
        assert r.replacement is x
        assert not r.new_instructions

    def test_with_new_replacement_is_last(self, graph):
        x = graph.parameters[0]
        a = ArithOp(BinOp.SHR, x, graph.const_int(1))
        b = ArithOp(BinOp.ADD, a, graph.const_int(1))
        r = Rewrite.with_new([a, b], "strength")
        assert r.replacement is b
        assert r.new_instructions == [a, b]

    def test_cycles_delta(self, graph):
        x = graph.parameters[0]
        div = ArithOp(BinOp.DIV, x, graph.const_int(2))
        shift = ArithOp(BinOp.SHR, x, graph.const_int(1))
        r = Rewrite.with_new([shift], "strength")
        assert r.cycles_delta(div) == pytest.approx(31.0)  # Figure 3

    def test_size_delta_for_elimination(self, graph):
        x = graph.parameters[0]
        add = ArithOp(BinOp.ADD, x, graph.const_int(0))
        r = Rewrite.redundant(x, "identity")
        assert r.size_delta(add) == pytest.approx(1.0)

    def test_negative_delta_possible(self, graph):
        # A rewrite may add more size than it removes (signed div).
        x = graph.parameters[0]
        div = ArithOp(BinOp.DIV, x, graph.const_int(4))
        seq = [
            ArithOp(BinOp.SHR, x, graph.const_int(63)),
            ArithOp(BinOp.USHR, x, graph.const_int(62)),
            ArithOp(BinOp.ADD, x, x),
            ArithOp(BinOp.SHR, x, graph.const_int(2)),
        ]
        r = Rewrite.with_new(seq, "signed-div")
        assert r.size_delta(div) < 0
        assert r.cycles_delta(div) > 0


class TestOptimizationContext:
    def test_identity_resolution(self, graph):
        ctx = OptimizationContext(graph)
        x = graph.parameters[0]
        assert ctx.resolve(x) is x
        assert ctx.stamp(x) == x.stamp

    def test_constant_value_of_constant(self, graph):
        ctx = OptimizationContext(graph)
        assert ctx.constant_value(graph.const_int(9)) == (9,)
        assert ctx.constant_value(graph.const_bool(False)) == (False,)

    def test_constant_value_of_unknown(self, graph):
        ctx = OptimizationContext(graph)
        assert ctx.constant_value(graph.parameters[0]) is None

    def test_constant_value_via_stamp(self, graph):
        from repro.ir.stamps import IntStamp

        x = graph.parameters[0]
        x.stamp = IntStamp(7, 7)
        ctx = OptimizationContext(graph)
        assert ctx.constant_value(x) == (7,)
