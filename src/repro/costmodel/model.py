"""IR node cost model: abstract cycles and code size per node kind.

This is the reproduction of Section 5.3 / Listing 7: in Graal every node
class carries a ``@NodeInfo(cycles=…, size=…)`` annotation; here a
registry maps node classes (and, for :class:`ArithOp`, operators) to a
:class:`NodeCost`.  The concrete numbers are anchored to the paper's own
worked examples:

* Figure 3: a division costs **32 cycles**, a shift **1 cycle**, so the
  Div→Shift strength reduction saves 31 cycles.
* Figure 4: ``Mul`` = 2 cycles, a store = **10 cycles**, ``Return`` = 2
  cycles, constants/phis are free — making the constant-folding example
  evaluate to 14 vs. 12.2 cycles.
* Listing 7: object allocation is ``CYCLES_8`` / ``SIZE_8``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.nodes import (
    ArithOp,
    ArrayLength,
    ArrayLoad,
    ArrayStore,
    Call,
    Compare,
    Constant,
    Goto,
    If,
    Instruction,
    LoadField,
    LoadGlobal,
    Neg,
    New,
    NewArray,
    Not,
    Parameter,
    Phi,
    Return,
    StoreField,
    StoreGlobal,
    Terminator,
)
from ..ir.ops import BinOp


@dataclass(frozen=True)
class NodeCost:
    """Abstract run-time (cycles) and machine-code size of one node."""

    cycles: float
    size: float


_CLASS_COSTS: dict[type, NodeCost] = {}
_ARITH_COSTS: dict[BinOp, NodeCost] = {}


def node_cost(cycles: float, size: float):
    """Class decorator mirroring Graal's ``@NodeInfo`` annotation.

    Usable by downstream extensions defining new node classes::

        @node_cost(cycles=8, size=8)
        class MyAllocationNode(Instruction): ...
    """

    def register(cls: type) -> type:
        _CLASS_COSTS[cls] = NodeCost(cycles, size)
        return cls

    return register


def register_cost(cls: type, cycles: float, size: float) -> None:
    _CLASS_COSTS[cls] = NodeCost(cycles, size)


def register_arith_cost(op: BinOp, cycles: float, size: float) -> None:
    _ARITH_COSTS[op] = NodeCost(cycles, size)


# ----------------------------------------------------------------------
# The cost table (see module docstring for the paper anchors).
# ----------------------------------------------------------------------
register_cost(Constant, 0, 1)
register_cost(Parameter, 0, 0)
register_cost(Phi, 0, 0)

register_arith_cost(BinOp.ADD, 1, 1)
register_arith_cost(BinOp.SUB, 1, 1)
register_arith_cost(BinOp.MUL, 2, 1)
register_arith_cost(BinOp.DIV, 32, 1)
register_arith_cost(BinOp.MOD, 32, 1)
register_arith_cost(BinOp.AND, 1, 1)
register_arith_cost(BinOp.OR, 1, 1)
register_arith_cost(BinOp.XOR, 1, 1)
register_arith_cost(BinOp.SHL, 1, 1)
register_arith_cost(BinOp.SHR, 1, 1)
register_arith_cost(BinOp.USHR, 1, 1)

register_cost(Compare, 1, 1)
register_cost(Not, 1, 1)
register_cost(Neg, 1, 1)

register_cost(New, 8, 8)  # Listing 7: tlab alloc + header init
register_cost(NewArray, 8, 8)
register_cost(LoadField, 2, 1)
register_cost(StoreField, 10, 2)  # Figure 4: Store = 10 cycles
register_cost(LoadGlobal, 2, 1)
register_cost(StoreGlobal, 10, 2)
register_cost(ArrayLoad, 2, 1)
register_cost(ArrayStore, 10, 2)
register_cost(ArrayLength, 2, 1)
register_cost(Call, 4, 2)

register_cost(Goto, 0, 1)
register_cost(If, 1, 2)
register_cost(Return, 2, 1)


def cost_of(node) -> NodeCost:
    """Cost of an instruction, value or terminator."""
    if isinstance(node, ArithOp):
        return _ARITH_COSTS[node.op]
    for cls in type(node).__mro__:
        cost = _CLASS_COSTS.get(cls)
        if cost is not None:
            return cost
    raise KeyError(f"no cost registered for {type(node).__name__}")


def cycles_of(node) -> float:
    return cost_of(node).cycles


def size_of(node) -> float:
    return cost_of(node).size
