"""Seeded corruption campaign: no corrupted artifact reaches dispatch."""

from __future__ import annotations

from repro.analysis.bcverify import corruption_campaign
from repro.analysis.bcverify.corrupt import DEFAULT_CORPUS, _MUTATORS


def test_campaign_rejects_every_corruption():
    """The acceptance bar: >= 200 single-point corruptions of cached
    bytecode — opcodes, registers, costs, weights, branch targets,
    fusion halves, templates, block tables, raw bit flips — and every
    single one is rejected at load (0 reach a dispatch loop)."""
    report = corruption_campaign(seed=1234, corruptions=200)
    assert report.total >= 200
    assert report.rejected == report.total, report.format()
    assert report.ok


def test_campaign_exercises_many_mutation_kinds():
    report = corruption_campaign(seed=99, corruptions=120)
    assert report.ok
    # the seeded mix must cover most structural mutators plus bitflips
    structural = {name for name, _fn in _MUTATORS}
    assert len(set(report.kinds) & structural) >= len(structural) - 2
    assert any(kind.startswith("bitflip") for kind in report.kinds)


def test_campaign_is_deterministic():
    first = corruption_campaign(seed=5, corruptions=40)
    second = corruption_campaign(seed=5, corruptions=40)
    assert first.kinds == second.kinds
    assert [r.detail for r in first.records] == [
        r.detail for r in second.records
    ]


def test_campaign_report_json():
    report = corruption_campaign(
        seed=3, corruptions=25, corpus=DEFAULT_CORPUS[:1]
    )
    payload = report.to_json()
    assert payload["ok"] is True
    assert payload["total"] == report.total
    assert payload["accepted"] == []
