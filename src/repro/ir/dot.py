"""Graphviz (dot) export of IR control-flow graphs.

Handy for debugging duplication decisions::

    from repro.ir.dot import graph_to_dot
    pathlib.Path("f.dot").write_text(graph_to_dot(graph))
    # dot -Tsvg f.dot -o f.svg
"""

from __future__ import annotations

import html

from .cfgutils import reverse_post_order
from .graph import Graph
from .nodes import Goto, If


def _escape(text: str) -> str:
    return html.escape(text, quote=True)


def graph_to_dot(graph: Graph, include_instructions: bool = True) -> str:
    """Render one function graph as a dot digraph string."""
    lines = [
        f'digraph "{graph.name}" {{',
        '  node [shape=box, fontname="monospace", fontsize=10];',
    ]
    for block in reverse_post_order(graph):
        if include_instructions:
            rows = [block.name]
            rows += [phi.describe() for phi in block.phis]
            rows += [ins.describe() for ins in block.instructions]
            if block.terminator is not None:
                rows.append(block.terminator.describe())
            label = "\\l".join(_escape(r) for r in rows) + "\\l"
        else:
            label = _escape(block.name)
        lines.append(f'  b{block.id} [label="{label}"];')
        term = block.terminator
        if isinstance(term, If):
            lines.append(
                f'  b{block.id} -> b{term.true_target.id} '
                f'[label="T {term.true_probability:.2f}"];'
            )
            lines.append(
                f'  b{block.id} -> b{term.false_target.id} '
                f'[label="F {1 - term.true_probability:.2f}"];'
            )
        elif isinstance(term, Goto):
            lines.append(f"  b{block.id} -> b{term.target.id};")
    lines.append("}")
    return "\n".join(lines)


def program_to_dot(program) -> str:
    """All functions of a program as dot clusters."""
    lines = ["digraph program {", '  node [shape=box, fontname="monospace"];']
    for index, graph in enumerate(program.functions.values()):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="{_escape(graph.name)}";')
        body = graph_to_dot(graph, include_instructions=False).splitlines()[2:-1]
        lines.extend("  " + line for line in body)
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
