"""The event/span tracer at the heart of the telemetry subsystem.

A :class:`Tracer` collects three kinds of telemetry from one
compilation (or one benchmark run):

* **spans** — named, nested intervals with wall-clock duration.  The
  pipeline wraps every phase run in a ``phase`` span (see
  :class:`repro.opts.base.Phase`), recording per-phase time plus the
  node-count and code-size deltas the phase caused;
* **point events** — typed records such as the DBDS ``dbds.candidate``
  and ``dbds.decision`` events (one per simulated pair, with benefit,
  cost, probability and every ``shouldDuplicate`` term);
* **counters** — cheap monotonic tallies (``dbds.duplications``,
  ``dbds.applied.constant-fold``, …) that stay live even when event
  recording is off.

Overhead discipline: the ambient default is :data:`NULL_TRACER`, whose
every operation is a no-op, and every instrumentation site checks
``tracer.enabled`` before computing anything expensive (code-size
recomputation in particular).  A ``Tracer(enabled=False)`` is the
middle setting — counters tally, but no events or timestamps are taken
— and is what the compiler uses by default so that per-unit metrics
can be wired from counters without ad-hoc plumbing.

The event schema and its serialization live in
:mod:`repro.obs.sinks`; aggregation lives in :mod:`repro.obs.profile`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

#: event kinds admitted by the schema
KIND_EVENT = "event"
KIND_SPAN = "span"


@dataclass
class Event:
    """One telemetry record.

    ``ts`` is seconds since the owning tracer's epoch; ``dur`` is the
    span duration (``None`` for point events); ``depth`` is the span
    nesting depth at emission time.  Everything domain-specific lives
    in ``attrs`` so the schema can grow without code changes.
    """

    name: str
    kind: str = KIND_EVENT
    ts: float = 0.0
    dur: Optional[float] = None
    depth: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)


class _Span:
    """Context manager recording one span; yields its :class:`Event`
    so the instrumentation site can attach attributes computed after
    the body (node/size deltas)."""

    __slots__ = ("_tracer", "event", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.event = Event(name=name, kind=KIND_SPAN, attrs=attrs)

    def __enter__(self) -> Event:
        tracer = self._tracer
        self.event.depth = tracer._depth
        tracer._depth += 1
        # Appended at entry so the trace reads in start order.
        tracer.events.append(self.event)
        self._t0 = tracer.clock()
        self.event.ts = self._t0 - tracer.epoch
        return self.event

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        self.event.dur = tracer.clock() - self._t0
        tracer._depth -= 1
        return False


class _NullSpan:
    """Shared do-nothing span for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> Event:
        # A fresh throwaway event: callers may set attrs on it.
        return Event(name="null")

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans, events and counters for one compilation.

    ``enabled=True`` records everything; ``enabled=False`` keeps only
    the counters (cheap dict increments — this is the compiler's
    default so metrics wiring works without event overhead).
    """

    __slots__ = ("enabled", "clock", "epoch", "events", "counters", "_depth")

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self.epoch = clock()
        self.events: list[Event] = []
        self.counters: dict[str, int] = {}
        self._depth = 0

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """Start a span; use as ``with tracer.span("phase", ...) as ev``."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> Optional[Event]:
        """Record a point event; returns it (or None when disabled)."""
        if not self.enabled:
            return None
        record = Event(
            name=name,
            ts=self.clock() - self.epoch,
            depth=self._depth,
            attrs=attrs,
        )
        self.events.append(record)
        return record

    def count(self, name: str, n: int = 1) -> None:
        """Bump a counter (works even when event recording is off)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        """Current value of a counter (0 when never bumped)."""
        return self.counters.get(name, 0)

    # ------------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> list[Event]:
        """All span events, optionally filtered by name."""
        return [
            e
            for e in self.events
            if e.kind == KIND_SPAN and (name is None or e.name == name)
        ]

    def named(self, name: str) -> list[Event]:
        """All events (any kind) with the given name."""
        return [e for e in self.events if e.name == name]


class NullTracer(Tracer):
    """The ambient default: drops events *and* counters.

    A process-wide singleton must not accrue state across unrelated
    compilations, so unlike ``Tracer(enabled=False)`` even ``count``
    is a no-op here.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def event(self, name: str, **attrs: Any) -> Optional[Event]:
        return None

    def count(self, name: str, n: int = 1) -> None:
        return None


NULL_TRACER = NullTracer()

# ----------------------------------------------------------------------
# Ambient tracer: instrumentation sites (Phase.run, the DBDS tiers, the
# backend) read it instead of threading a tracer argument through every
# constructor in the compiler.
# ----------------------------------------------------------------------
_current: Tracer = NULL_TRACER


def current_tracer() -> Tracer:
    """The tracer instrumentation sites should emit to."""
    return _current


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the duration."""
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous
