"""AST → SSA IR construction with integrated type checking.

SSA is built directly using the structured control flow of the source
language: branch environments are merged with phis, loop headers get
pessimistic phis for every live variable (degenerate ones are cleaned up
by canonicalization later).  The builder establishes the IR's structural
invariants by construction — every ``If`` targets fresh single-
predecessor blocks, so merge predecessors always end in ``Goto``.
"""

from __future__ import annotations

from typing import Optional

from ..ir.block import Block
from ..ir.graph import Graph, Program
from ..ir.nodes import (
    ArithOp,
    ArrayLength,
    ArrayLoad,
    ArrayStore,
    Call,
    Compare,
    Goto,
    If,
    LoadField,
    LoadGlobal,
    Neg,
    New,
    NewArray,
    Not,
    Phi,
    Return,
    StoreField,
    StoreGlobal,
    Value,
)
from ..ir.ops import BinOp, CmpOp
from ..ir.types import (
    BOOL,
    INT,
    VOID,
    ArrayType,
    ClassDecl,
    FieldDecl,
    NullType,
    ObjectType,
    Type,
    assignable,
    join,
)
from ..ir.verifier import verify_graph
from . import ast
from .lexer import CompileError

_ARITH_OPS = {
    "+": BinOp.ADD, "-": BinOp.SUB, "*": BinOp.MUL, "/": BinOp.DIV,
    "%": BinOp.MOD, "&": BinOp.AND, "|": BinOp.OR, "^": BinOp.XOR,
    "<<": BinOp.SHL, ">>": BinOp.SHR, ">>>": BinOp.USHR,
}
_CMP_OPS = {
    "==": CmpOp.EQ, "!=": CmpOp.NE, "<": CmpOp.LT, "<=": CmpOp.LE,
    ">": CmpOp.GT, ">=": CmpOp.GE,
}


def build_program(module: ast.Module) -> Program:
    """Type-check and lower a parsed module into an IR program."""
    program = Program()
    for cls in module.classes:
        if cls.name in program.class_table:
            raise CompileError(f"duplicate class {cls.name!r}", cls.line)
        program.class_table.declare(
            ClassDecl(cls.name, [FieldDecl(n, t) for n, t in cls.fields])
        )
    for gdef in module.globals:
        _check_type_exists(program, gdef.declared_type, gdef.line)
        if gdef.name in program.globals:
            raise CompileError(f"duplicate global {gdef.name!r}", gdef.line)
        program.declare_global(gdef.name, gdef.declared_type)
    signatures: dict[str, ast.FunctionDef] = {}
    for fdef in module.functions:
        if fdef.name in signatures:
            raise CompileError(f"duplicate function {fdef.name!r}", fdef.line)
        for _, ty in fdef.params:
            _check_type_exists(program, ty, fdef.line)
        _check_type_exists(program, fdef.return_type, fdef.line)
        signatures[fdef.name] = fdef
    for fdef in module.functions:
        builder = _FunctionBuilder(program, signatures, fdef)
        program.add_function(builder.build())
    return program


def _check_type_exists(program: Program, ty: Type, line: int) -> None:
    if isinstance(ty, ObjectType) and ty.class_name not in program.class_table:
        raise CompileError(f"unknown class {ty.class_name!r}", line)
    if isinstance(ty, ArrayType):
        _check_type_exists(program, ty.element, line)


class _FunctionBuilder:
    def __init__(
        self,
        program: Program,
        signatures: dict[str, ast.FunctionDef],
        fdef: ast.FunctionDef,
    ) -> None:
        self.program = program
        self.signatures = signatures
        self.fdef = fdef
        self.graph = Graph(fdef.name, fdef.params, fdef.return_type)
        self.block: Optional[Block] = self.graph.entry
        #: variable name -> (declared type, current SSA value)
        self.env: dict[str, tuple[Type, Value]] = {}
        for param in self.graph.parameters:
            if param.param_name in self.env:
                raise CompileError(f"duplicate parameter {param.param_name!r}", fdef.line)
            self.env[param.param_name] = (param.type, param)

    # ------------------------------------------------------------------
    def build(self) -> Graph:
        self._build_statements(self.fdef.body)
        if self.block is not None:
            if self.fdef.return_type != VOID:
                raise CompileError(
                    f"function {self.fdef.name!r} may finish without returning a value",
                    self.fdef.line,
                )
            self.block.set_terminator(Return(None))
        verify_graph(self.graph)
        return self.graph

    def _emit(self, instruction):
        assert self.block is not None
        return self.block.append(instruction)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _build_statements(self, statements: list[ast.Stmt]) -> None:
        for stmt in statements:
            if self.block is None:
                # Code after a return/unconditional exit: statically
                # unreachable; reject to keep programs honest.
                raise CompileError("unreachable statement", stmt.line)
            self._build_statement(stmt)

    def _build_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._build_var_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._build_assign(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._build_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._build_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._build_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self._build_return(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._build_expr(stmt.expr, allow_void=True)
        else:  # pragma: no cover - parser produces no other kinds
            raise AssertionError(f"unknown statement {stmt!r}")

    def _build_var_decl(self, stmt: ast.VarDecl) -> None:
        if stmt.name in self.env:
            raise CompileError(f"variable {stmt.name!r} already defined", stmt.line)
        _check_type_exists(self.program, stmt.declared_type, stmt.line)
        if stmt.init is not None:
            value, vtype = self._build_expr(stmt.init)
            self._check_assignable(stmt.declared_type, vtype, stmt.line)
        else:
            value = self._default_value(stmt.declared_type)
        self.env[stmt.name] = (stmt.declared_type, value)

    def _default_value(self, ty: Type) -> Value:
        if ty == INT:
            return self.graph.const_int(0)
        if ty == BOOL:
            return self.graph.const_bool(False)
        if ty.is_reference():
            return self.graph.const_null(ty)
        raise CompileError(f"cannot default-initialize {ty!r}")

    def _build_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.VarRef):
            if target.name in self.env:
                declared, _ = self.env[target.name]
                value, vtype = self._build_expr(stmt.value)
                self._check_assignable(declared, vtype, stmt.line)
                self.env[target.name] = (declared, value)
                return
            if target.name in self.program.globals:
                declared = self.program.globals[target.name]
                value, vtype = self._build_expr(stmt.value)
                self._check_assignable(declared, vtype, stmt.line)
                self._emit(StoreGlobal(target.name, value))
                return
            raise CompileError(f"undefined variable {target.name!r}", stmt.line)
        if isinstance(target, ast.FieldAccess):
            obj, obj_type = self._build_expr(target.obj)
            field_type = self._field_type(obj_type, target.field, stmt.line)
            value, vtype = self._build_expr(stmt.value)
            self._check_assignable(field_type, vtype, stmt.line)
            self._emit(StoreField(obj, target.field, value))
            return
        if isinstance(target, ast.Index):
            array, arr_type = self._build_expr(target.array)
            if not isinstance(arr_type, ArrayType):
                raise CompileError(f"indexing non-array {arr_type!r}", stmt.line)
            index, index_type = self._build_expr(target.index)
            if index_type != INT:
                raise CompileError("array index must be int", stmt.line)
            value, vtype = self._build_expr(stmt.value)
            self._check_assignable(arr_type.element, vtype, stmt.line)
            self._emit(ArrayStore(array, index, value))
            return
        raise AssertionError(f"invalid assign target {target!r}")

    def _build_return(self, stmt: ast.ReturnStmt) -> None:
        want = self.fdef.return_type
        if stmt.value is None:
            if want != VOID:
                raise CompileError("missing return value", stmt.line)
            self.block.set_terminator(Return(None))
        else:
            if want == VOID:
                raise CompileError("void function returns a value", stmt.line)
            value, vtype = self._build_expr(stmt.value)
            self._check_assignable(want, vtype, stmt.line)
            self.block.set_terminator(Return(value))
        self.block = None

    def _build_if(self, stmt: ast.IfStmt) -> None:
        condition, cond_type = self._build_expr(stmt.condition)
        if cond_type != BOOL:
            raise CompileError("if condition must be bool", stmt.line)
        then_block = self.graph.new_block()
        else_block = self.graph.new_block()
        self.block.set_terminator(If(condition, then_block, else_block))

        outer_env = dict(self.env)
        outer_vars = set(outer_env)

        self.block = then_block
        self._build_statements(stmt.then_body)
        then_exit, then_env = self.block, self.env

        self.env = dict(outer_env)
        self.block = else_block
        self._build_statements(stmt.else_body)
        else_exit, else_env = self.block, self.env

        if then_exit is None and else_exit is None:
            self.block = None
            return
        if else_exit is None:
            self.block = then_exit
            self.env = {k: v for k, v in then_env.items() if k in outer_vars}
            return
        if then_exit is None:
            self.block = else_exit
            self.env = {k: v for k, v in else_env.items() if k in outer_vars}
            return

        merge = self.graph.new_block()
        then_exit.set_terminator(Goto(merge))
        else_exit.set_terminator(Goto(merge))
        merged_env: dict[str, tuple[Type, Value]] = {}
        # Iterate the env dict, not outer_vars: a set of names iterates
        # in hash order, which would make phi creation order (and with
        # it value numbering, register layout and bytecode digests)
        # vary from process to process under hash randomization.
        for name in outer_env:
            declared = outer_env[name][0]
            tval = then_env[name][1]
            eval_ = else_env[name][1]
            if tval is eval_:
                merged_env[name] = (declared, tval)
            else:
                phi = Phi(merge, declared, [tval, eval_])
                merge.add_phi(phi)
                merged_env[name] = (declared, phi)
        self.env = merged_env
        self.block = merge

    def _build_for(self, stmt: ast.ForStmt) -> None:
        """Desugar ``for (init; cond; step)`` to init + while, with the
        step executed after the body (skipped on early return) and the
        init variable scoped to the loop."""
        outer_vars = set(self.env)
        self._build_statement(stmt.init)
        self._build_while(
            ast.WhileStmt(stmt.line, stmt.condition, stmt.body), step=stmt.step
        )
        if self.block is not None:
            self.env = {
                name: value
                for name, value in self.env.items()
                if name in outer_vars
            }

    def _build_while(self, stmt: ast.WhileStmt, step: Optional[ast.Assign] = None) -> None:
        outer_vars = set(self.env)
        header = self.graph.new_block()
        self.block.set_terminator(Goto(header))

        # Pessimistic loop phis for every visible variable; canonicalize
        # collapses the ones that turn out loop-invariant.
        loop_phis: dict[str, Phi] = {}
        header_env: dict[str, tuple[Type, Value]] = {}
        for name, (declared, value) in self.env.items():
            phi = Phi(header, declared, [value])
            header.add_phi(phi)
            loop_phis[name] = phi
            header_env[name] = (declared, phi)
        self.env = header_env
        self.block = header

        condition, cond_type = self._build_expr(stmt.condition)
        if cond_type != BOOL:
            raise CompileError("while condition must be bool", stmt.line)
        body_block = self.graph.new_block()
        exit_block = self.graph.new_block()
        self.block.set_terminator(If(condition, body_block, exit_block))
        env_at_test = dict(self.env)

        self.block = body_block
        self._build_statements(stmt.body)
        if self.block is not None and step is not None:
            self._build_statement(step)
        if self.block is not None:
            # Back edge: register the predecessor, then append the
            # positional phi inputs for it.
            self.block.set_terminator(Goto(header))
            for name, phi in loop_phis.items():
                phi._append_input(self.env[name][1])
        else:
            # No back edge: the header is not a merge; its phis are
            # degenerate and collapse to their (pre-loop) single input.
            replacement = {phi: phi.input(0) for phi in loop_phis.values()}
            for phi in loop_phis.values():
                phi.replace_all_uses(replacement[phi])
                header.remove_instruction(phi)
            env_at_test = {
                name: (declared, replacement.get(value, value))
                for name, (declared, value) in env_at_test.items()
            }

        self.block = exit_block
        self.env = {k: v for k, v in env_at_test.items() if k in outer_vars}

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _build_expr(self, expr: ast.Expr, allow_void: bool = False) -> tuple[Value, Type]:
        value, ty = self._build_expr_inner(expr)
        if ty == VOID and not allow_void:
            raise CompileError("void value used in expression", expr.line)
        return value, ty

    def _build_expr_inner(self, expr: ast.Expr) -> tuple[Value, Type]:
        if isinstance(expr, ast.IntLiteral):
            return self.graph.const_int(expr.value), INT
        if isinstance(expr, ast.BoolLiteral):
            return self.graph.const_bool(expr.value), BOOL
        if isinstance(expr, ast.NullLiteral):
            return self.graph.const_null(NullType()), NullType()
        if isinstance(expr, ast.VarRef):
            if expr.name in self.env:
                declared, value = self.env[expr.name]
                return value, declared
            if expr.name in self.program.globals:
                ty = self.program.globals[expr.name]
                return self._emit(LoadGlobal(expr.name, ty)), ty
            raise CompileError(f"undefined variable {expr.name!r}", expr.line)
        if isinstance(expr, ast.Unary):
            return self._build_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._build_binary(expr)
        if isinstance(expr, ast.FieldAccess):
            obj, obj_type = self._build_expr(expr.obj)
            field_type = self._field_type(obj_type, expr.field, expr.line)
            return self._emit(LoadField(obj, expr.field, field_type)), field_type
        if isinstance(expr, ast.Index):
            array, arr_type = self._build_expr(expr.array)
            if not isinstance(arr_type, ArrayType):
                raise CompileError(f"indexing non-array {arr_type!r}", expr.line)
            index, index_type = self._build_expr(expr.index)
            if index_type != INT:
                raise CompileError("array index must be int", expr.line)
            return self._emit(ArrayLoad(array, index, arr_type.element)), arr_type.element
        if isinstance(expr, ast.LenExpr):
            array, arr_type = self._build_expr(expr.array)
            if not isinstance(arr_type, ArrayType):
                raise CompileError("len() of non-array", expr.line)
            return self._emit(ArrayLength(array)), INT
        if isinstance(expr, ast.CallExpr):
            return self._build_call(expr)
        if isinstance(expr, ast.NewObject):
            return self._build_new_object(expr)
        if isinstance(expr, ast.NewArrayExpr):
            _check_type_exists(self.program, expr.element_type, expr.line)
            length, lt = self._build_expr(expr.length)
            if lt != INT:
                raise CompileError("array length must be int", expr.line)
            value = self._emit(NewArray(expr.element_type, length))
            return value, ArrayType(expr.element_type)
        raise AssertionError(f"unknown expression {expr!r}")

    def _build_unary(self, expr: ast.Unary) -> tuple[Value, Type]:
        if expr.op == "-" and isinstance(expr.operand, ast.IntLiteral):
            return self.graph.const_int(-expr.operand.value), INT
        value, ty = self._build_expr(expr.operand)
        if expr.op == "-":
            if ty != INT:
                raise CompileError("unary '-' needs int", expr.line)
            return self._emit(Neg(value)), INT
        if ty != BOOL:
            raise CompileError("'!' needs bool", expr.line)
        return self._emit(Not(value)), BOOL

    def _build_binary(self, expr: ast.Binary) -> tuple[Value, Type]:
        if expr.op in ("&&", "||"):
            return self._build_short_circuit(expr)
        if expr.op in _CMP_OPS:
            left, lt = self._build_expr(expr.left)
            right, rt = self._build_expr(expr.right)
            op = _CMP_OPS[expr.op]
            if op in (CmpOp.EQ, CmpOp.NE):
                if not (assignable(lt, rt) or assignable(rt, lt)):
                    raise CompileError(
                        f"cannot compare {lt!r} with {rt!r}", expr.line
                    )
            else:
                if lt != INT or rt != INT:
                    raise CompileError(f"{expr.op!r} needs int operands", expr.line)
            return self._emit(Compare(op, left, right)), BOOL
        if expr.op in _ARITH_OPS:
            # `&`, `|`, `^` double as boolean (non-short-circuit) ops.
            left, lt = self._build_expr(expr.left)
            right, rt = self._build_expr(expr.right)
            if expr.op in ("&", "|", "^") and lt == BOOL and rt == BOOL:
                return self._build_bool_bitop(expr.op, left, right), BOOL
            if lt != INT or rt != INT:
                raise CompileError(f"{expr.op!r} needs int operands", expr.line)
            return self._emit(ArithOp(_ARITH_OPS[expr.op], left, right)), INT
        raise AssertionError(f"unknown binary operator {expr.op!r}")

    def _build_bool_bitop(self, op: str, left: Value, right: Value) -> Value:
        """Lower the non-short-circuit boolean operators.

        ``a ^ b`` is exactly ``a != b`` on booleans.  ``&`` and ``|``
        become a select diamond (both operands are already evaluated, so
        the eager semantics is preserved).
        """
        if op == "^":
            return self._emit(Compare(CmpOp.NE, left, right))
        if op == "&":
            return self._emit_select(left, right, self.graph.const_bool(False))
        return self._emit_select(left, self.graph.const_bool(True), right)

    def _emit_select(self, condition: Value, if_true: Value, if_false: Value) -> Value:
        """``condition ? if_true : if_false`` as a CFG diamond + phi."""
        then_block = self.graph.new_block()
        else_block = self.graph.new_block()
        self.block.set_terminator(If(condition, then_block, else_block))
        merge = self.graph.new_block()
        then_block.set_terminator(Goto(merge))
        else_block.set_terminator(Goto(merge))
        phi = Phi(merge, BOOL, [if_true, if_false])
        merge.add_phi(phi)
        self.block = merge
        return phi

    def _build_short_circuit(self, expr: ast.Binary) -> tuple[Value, Type]:
        left, lt = self._build_expr(expr.left)
        if lt != BOOL:
            raise CompileError(f"{expr.op!r} needs bool operands", expr.line)
        rhs_block = self.graph.new_block()
        skip_block = self.graph.new_block()
        if expr.op == "&&":
            self.block.set_terminator(If(left, rhs_block, skip_block))
            skip_value = self.graph.const_bool(False)
        else:
            self.block.set_terminator(If(left, skip_block, rhs_block))
            skip_value = self.graph.const_bool(True)

        self.block = rhs_block
        right, rt = self._build_expr(expr.right)
        if rt != BOOL:
            raise CompileError(f"{expr.op!r} needs bool operands", expr.line)
        rhs_exit = self.block

        merge = self.graph.new_block()
        rhs_exit.set_terminator(Goto(merge))
        skip_block.set_terminator(Goto(merge))
        phi = Phi(merge, BOOL, [right, skip_value])
        merge.add_phi(phi)
        self.block = merge
        return phi, BOOL

    def _build_call(self, expr: ast.CallExpr) -> tuple[Value, Type]:
        if expr.callee not in self.signatures:
            raise CompileError(f"undefined function {expr.callee!r}", expr.line)
        sig = self.signatures[expr.callee]
        if len(expr.args) != len(sig.params):
            raise CompileError(
                f"{expr.callee!r} expects {len(sig.params)} arguments, "
                f"got {len(expr.args)}",
                expr.line,
            )
        args: list[Value] = []
        for arg_expr, (_, want) in zip(expr.args, sig.params):
            value, have = self._build_expr(arg_expr)
            self._check_assignable(want, have, expr.line)
            args.append(value)
        call = self._emit(Call(expr.callee, args, sig.return_type))
        return call, sig.return_type

    def _build_new_object(self, expr: ast.NewObject) -> tuple[Value, Type]:
        if expr.class_name not in self.program.class_table:
            raise CompileError(f"unknown class {expr.class_name!r}", expr.line)
        decl = self.program.class_table.lookup(expr.class_name)
        obj_type = ObjectType(expr.class_name)
        obj = self._emit(New(obj_type))
        seen: set[str] = set()
        for fname, init in expr.initializers:
            if not decl.has_field(fname):
                raise CompileError(
                    f"class {expr.class_name} has no field {fname!r}", expr.line
                )
            if fname in seen:
                raise CompileError(f"field {fname!r} initialized twice", expr.line)
            seen.add(fname)
            value, vtype = self._build_expr(init)
            self._check_assignable(decl.field_type(fname), vtype, expr.line)
            self._emit(StoreField(obj, fname, value))
        return obj, obj_type

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _field_type(self, obj_type: Type, field: str, line: int) -> Type:
        if not isinstance(obj_type, ObjectType):
            raise CompileError(f"field access on non-object {obj_type!r}", line)
        decl = self.program.class_table.lookup(obj_type.class_name)
        if not decl.has_field(field):
            raise CompileError(
                f"class {obj_type.class_name} has no field {field!r}", line
            )
        return decl.field_type(field)

    def _check_assignable(self, target: Type, source: Type, line: int) -> None:
        if not assignable(target, source):
            raise CompileError(f"cannot assign {source!r} to {target!r}", line)


def compile_source(source: str) -> Program:
    """Parse + type check + lower MiniLang source text to an IR program."""
    from .parser import parse_module

    return build_program(parse_module(source))
