"""Tests for instruction and graph cloning."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter
from repro.ir import (
    ArithOp,
    BinOp,
    Goto,
    Graph,
    INT,
    LoadField,
    New,
    ObjectType,
    Phi,
    Return,
    StoreField,
    verify_graph,
)
from repro.ir.copy import clone_instruction, copy_graph


class TestCloneInstruction:
    def test_clone_with_mapping(self):
        g = Graph("f", [("a", INT), ("b", INT)], INT)
        a, b = g.parameters
        add = ArithOp(BinOp.ADD, a, a)
        clone = clone_instruction(add, lambda v: b if v is a else v)
        assert clone is not add
        assert clone.inputs == (b, b)
        assert clone.op is BinOp.ADD

    def test_clone_memory_ops(self):
        g = Graph("f", [], INT)
        alloc = New(ObjectType("A"))
        store = StoreField(alloc, "x", g.const_int(1))
        load = LoadField(alloc, "x", INT)
        s2 = clone_instruction(store, lambda v: v)
        l2 = clone_instruction(load, lambda v: v)
        assert s2.field == "x" and l2.field == "x"
        assert l2.type == INT

    def test_phi_not_clonable(self):
        g = Graph("f", [], INT)
        b = g.new_block()
        phi = Phi(b, INT, [])
        with pytest.raises(TypeError):
            clone_instruction(phi, lambda v: v)


PROGRAM = """
class A { x: int; n: A; }
global total: int;

fn work(a: A, k: int) -> int {
  var acc: int = 0;
  var i: int = 0;
  while (i < k) {
    if (a != null) { acc = acc + a.x; } else { acc = acc + 1; }
    i = i + 1;
  }
  total = acc;
  return acc;
}
"""


class TestCopyGraph:
    def test_copy_verifies(self):
        program = compile_source(PROGRAM)
        graph = program.function("work")
        copy, value_map = copy_graph(graph)
        verify_graph(copy)

    def test_copy_is_disjoint(self):
        program = compile_source(PROGRAM)
        graph = program.function("work")
        copy, value_map = copy_graph(graph)
        copied_blocks = set(copy.blocks)
        assert not copied_blocks & set(graph.blocks)
        for old, new in value_map.items():
            assert old is not new

    def test_copy_preserves_structure(self):
        program = compile_source(PROGRAM)
        graph = program.function("work")
        copy, _ = copy_graph(graph)
        assert len(copy.blocks) == len(graph.blocks)
        assert copy.instruction_count() == graph.instruction_count()
        assert copy.return_type == graph.return_type
        assert [p.param_name for p in copy.parameters] == [
            p.param_name for p in graph.parameters
        ]

    def test_copy_runs_identically(self):
        program = compile_source(PROGRAM)
        graph = program.function("work")
        copy, _ = copy_graph(graph)
        # Swap the copy in and compare behaviour.
        original_result = Interpreter(program).run("work", [None, 5])
        program.functions["work"] = copy
        copied_result = Interpreter(program).run("work", [None, 5])
        assert copied_result.value == original_result.value

    def test_mutating_copy_leaves_original(self):
        program = compile_source(PROGRAM)
        graph = program.function("work")
        before = graph.instruction_count()
        copy, _ = copy_graph(graph)
        # Chop the copy apart.
        for block in list(copy.blocks):
            if block is not copy.entry:
                block.clear_terminator()
        assert graph.instruction_count() == before
        verify_graph(graph)

    def test_probabilities_and_trips_copied(self):
        program = compile_source(PROGRAM)
        graph = program.function("work")
        from repro.ir.nodes import If as IfNode

        for block in graph.blocks:
            if isinstance(block.terminator, IfNode):
                block.terminator.true_probability = 0.77
            block.profile_trip_count = 5.5
        copy, _ = copy_graph(graph)
        for block in copy.blocks:
            if isinstance(block.terminator, IfNode):
                assert block.terminator.true_probability == pytest.approx(0.77)
        assert all(
            getattr(b, "profile_trip_count", None) == 5.5 for b in copy.blocks
        )

    def test_phi_inputs_positional(self):
        program = compile_source(PROGRAM)
        graph = program.function("work")
        copy, value_map = copy_graph(graph)
        for old_block in graph.blocks:
            for phi in old_block.phis:
                new_phi = value_map[phi]
                assert len(new_phi.inputs) == len(phi.inputs)
                for old_in, new_in in zip(phi.inputs, new_phi.inputs):
                    mapped = value_map.get(old_in)
                    if mapped is not None:
                        assert new_in is mapped
