"""Structural and SSA verifier — compatibility shim.

The checks themselves now live in the pluggable registry of
:mod:`repro.analysis` (see ``docs/ANALYSIS.md``); this module keeps the
historical fail-fast API that phases and tests call between rewrites.
Message texts are unchanged: :func:`verify_graph` raises
:class:`VerificationError` describing the first violated property, and
:func:`verify_program` names the failing function.

The analysis package import is deferred into the functions because
``repro.ir.__init__`` re-exports this module while the analysis
package itself is built on ``repro.ir``.
"""

from __future__ import annotations

from typing import Optional

from .graph import Graph


class VerificationError(Exception):
    """An IR invariant does not hold.

    ``function`` names the graph that failed (always set by
    :func:`verify_graph`/:func:`verify_program`).
    """

    def __init__(self, message: str, function: Optional[str] = None) -> None:
        super().__init__(message)
        self.function = function


def verify_graph(graph: Graph, check_dominance: bool = True) -> None:
    """Verify all structural invariants of one function graph."""
    from ..analysis import (
        CORE_CHECKERS,
        STRUCTURAL_CHECKERS,
        run_checkers,
    )

    names = CORE_CHECKERS if check_dominance else STRUCTURAL_CHECKERS
    report = run_checkers(graph, checkers=names, fail_fast=True)
    errors = report.errors()
    if errors:
        raise VerificationError(
            f"{graph.name}: {errors[0].message}", function=graph.name
        )


def verify_program(program) -> None:
    """Verify all functions of a program.

    The raised :class:`VerificationError` names the failing function
    both in its message and in its ``function`` attribute.
    """
    for name, graph in program.functions.items():
        try:
            verify_graph(graph)
        except VerificationError as exc:
            raise VerificationError(
                f"in function {name!r}: {exc}", function=name
            ) from None
