"""Every benchmark of every suite must compile, verify and run cleanly
under the DBDS configuration — the full 45-program corpus."""

import pytest

from repro.bench.workloads.suites import ALL_SUITES, generate_workload
from repro.interp.interpreter import Interpreter
from repro.ir import verify_program
from repro.pipeline.compiler import compile_and_profile
from repro.pipeline.config import DBDS

CASES = [
    (suite_name, benchmark)
    for suite_name, profile in sorted(ALL_SUITES.items())
    for benchmark in profile.benchmark_names
]


@pytest.mark.parametrize(
    "suite_name,bench_name", CASES, ids=[f"{s}/{b}" for s, b in CASES]
)
def test_workload_compiles_and_runs(suite_name, bench_name):
    profile = ALL_SUITES[suite_name]
    workload = generate_workload(profile, bench_name)
    program, report = compile_and_profile(
        workload.source, workload.entry, workload.profile_args, DBDS
    )
    verify_program(program)
    result = Interpreter(program).run(
        workload.entry, list(workload.measure_args[0])
    )
    assert not result.trapped, f"{suite_name}/{bench_name}: {result.trap}"
    assert report.total_compile_time > 0
