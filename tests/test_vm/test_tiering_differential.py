"""Tiered-engine differential oracle: bit-identity under promotion.

The adaptive machine makes the strongest claim of any engine: it
rewrites its own bytecode *while the differential is running* and must
still be bit-identical — values, traps, steps, cycles, observer hook
sequences, budget-stop timing — to the reference interpreter and the
always-fused VM.  This suite drives promotion hard (tiny thresholds,
many argument sets per runner so functions go hot mid-sweep) over
every bundled example plus a corpus of seeded generator programs, and
pins down runs whose budget expires in the middle of a promotion.
"""

import pathlib

import pytest

from repro.analysis.progen import random_program
from repro.analysis.validate import SCREEN_STEP_BUDGET, _screen_mutant, validate_engines
from repro.interp.interpreter import BudgetExceeded, Interpreter, observable_outcome
from repro.pipeline.compiler import compile_and_profile
from repro.pipeline.config import DBDS
from repro.vm import (
    TieredVirtualMachine,
    TieringPolicy,
    VirtualMachine,
    translate_program,
)

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent.parent / "examples").rglob("*.mini")
)
EXAMPLE_ARGS = [[0], [1], [4], [7]]

#: seeded generator programs in the tiered differential corpus
GENERATED_COUNT = 32
GENERATED_ARGS = [[0], [2], [5]]

#: small enough that multi-set sweeps promote mid-differential
HOT_THRESHOLD = 4


def tiered_machine(program, threshold=HOT_THRESHOLD, **kwargs):
    return TieredVirtualMachine(
        program, metered=True,
        policy=TieringPolicy(threshold=threshold), **kwargs,
    )


def sweep(runner, entry, arg_sets):
    outcomes = []
    for args in arg_sets:
        runner.reset()
        result = runner.run(entry, list(args))
        outcomes.append(
            (observable_outcome(result, runner.state), result.steps, result.cycles)
        )
    return outcomes


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_examples_identical_with_tiered_in_matrix(path):
    # validate_engines defaults to the full matrix (tiered included):
    # one tiered runner sweeps all argument sets, promoting mid-sweep.
    result = validate_engines(path.read_text(), "main", EXAMPLE_ARGS)
    assert result.ok, "\n".join(r.format() for r in result.divergences)
    assert "tiered" in result.configs


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_examples_identical_under_aggressive_tiering(path):
    # Same oracle with a promote-almost-immediately threshold, compared
    # manually against reference + vm so the tiered runner keeps its
    # promotion state across the whole sweep.
    program, _ = compile_and_profile(
        path.read_text(), "main", EXAMPLE_ARGS, DBDS
    )
    bytecode = translate_program(program)
    expected = sweep(
        VirtualMachine(bytecode, metered=True), "main", EXAMPLE_ARGS * 3
    )
    machine = tiered_machine(program, threshold=1)
    assert sweep(machine, "main", EXAMPLE_ARGS * 3) == expected
    assert machine.controller.promotions, "expected at least one tier-up"


@pytest.mark.parametrize("seed", range(GENERATED_COUNT))
def test_generated_programs_identical_on_tiered(seed):
    source = random_program(seed)
    if not _screen_mutant(source, "main", GENERATED_ARGS, SCREEN_STEP_BUDGET):
        pytest.skip("generated program exceeds the screening step budget")
    result = validate_engines(
        source, "main", GENERATED_ARGS, seed=seed, engines=("reference", "vm", "tiered")
    )
    assert result.ok, "\n".join(r.format() for r in result.divergences)


@pytest.mark.parametrize("budget", [3, 11, 29, 83, 211, 997])
def test_budget_stop_mid_promotion_is_bit_identical(budget):
    # Budgets chosen to land everywhere: before the first promotion,
    # inside the frame whose back edge triggers it, and after.
    path = next(p for p in EXAMPLES if p.stem == "nqueens")
    program, _ = compile_and_profile(path.read_text(), "main", [[5]], DBDS)
    baseline = VirtualMachine(
        translate_program(program), metered=True, max_steps=budget
    )
    machine = tiered_machine(program, max_steps=budget)
    with pytest.raises(BudgetExceeded) as ref_exc:
        baseline.run("main", [6])
    with pytest.raises(BudgetExceeded) as tier_exc:
        machine.run("main", [6])
    assert str(tier_exc.value) == str(ref_exc.value)
    assert machine.state.steps == baseline.state.steps
    assert machine.state.cycles == baseline.state.cycles


def test_observer_hook_sequences_identical():
    # Scalar-only workload: observed values compare by value, so the
    # hook streams can be matched exactly across engines.
    source = """
    fn step(acc: int, i: int) -> int {
      if (acc > 100) { return acc - i; }
      return acc + i * 3;
    }

    fn main(n: int) -> int {
      var acc: int = 0;
      var i: int = 0;
      while (i < n) {
        acc = step(acc, i);
        i = i + 1;
      }
      return acc;
    }
    """
    program, _ = compile_and_profile(source, "main", [[9]], DBDS)
    seen_ref, seen_tiered = [], []
    Interpreter(
        program, observer=lambda n, v: seen_ref.append((n, v))
    ).run("main", [9])
    machine = TieredVirtualMachine(
        program,
        policy=TieringPolicy(threshold=1),
        observer=lambda n, v: seen_tiered.append((n, v)),
    )
    machine.run("main", [9])
    assert seen_tiered == seen_ref


def test_promoted_state_carries_into_later_differentials():
    # After a hot sweep promoted everything promotable, the SAME
    # machine must stay bit-identical on fresh argument sets — the
    # tier-1 half of the hot-swap contract.
    path = next(p for p in EXAMPLES if p.stem == "matrix")
    program, _ = compile_and_profile(path.read_text(), "main", [[4]], DBDS)
    bytecode = translate_program(program)
    machine = tiered_machine(program, threshold=2)
    sweep(machine, "main", [[3], [3], [3], [3]])
    promoted_before = len(machine.controller.promotions)
    expected = sweep(VirtualMachine(bytecode, metered=True), "main", EXAMPLE_ARGS)
    assert sweep(machine, "main", EXAMPLE_ARGS) == expected
    assert promoted_before >= 1
