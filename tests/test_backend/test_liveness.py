"""Tests for liveness analysis and interval construction."""

import pytest

from repro.backend.liveness import (
    compute_intervals,
    compute_liveness,
    number_instructions,
)
from repro.backend.lowering import lower_graph
from repro.frontend.irbuilder import compile_source


def lower(source: str, name: str = "f"):
    program = compile_source(source)
    return lower_graph(program.function(name))


class TestLiveness:
    def test_straightline(self):
        fn = lower("fn f(a: int, b: int) -> int { return a + b; }")
        live_in, live_out = compute_liveness(fn)
        entry = fn.blocks[fn.entry]
        # Parameters are defined by the caller: live-in via their uses.
        assert set(fn.param_regs) <= live_in[entry.id] | set(fn.param_regs)
        assert live_out[entry.id] == set()

    def test_value_live_across_branch(self):
        fn = lower(
            """
fn f(a: int, b: int) -> int {
  var t: int = a * b;
  if (a > 0) { return t; }
  return t + 1;
}
"""
        )
        live_in, live_out = compute_liveness(fn)
        entry = fn.blocks[fn.entry]
        # t is live-out of the entry block (used in both successors).
        assert len(live_out[entry.id]) >= 1

    def test_loop_carried_value_live_at_header(self):
        fn = lower(
            """
fn f(n: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < n) { s = s + i; i = i + 1; }
  return s;
}
"""
        )
        live_in, live_out = compute_liveness(fn)
        # Some block has loop-carried registers live-in (header).
        assert any(len(regs) >= 2 for regs in live_in.values())


class TestIntervals:
    def test_intervals_cover_defs_and_uses(self):
        fn = lower("fn f(a: int) -> int { var t: int = a + 1; return t * 2; }")
        intervals = compute_intervals(fn)
        for interval in intervals:
            assert interval.start <= interval.end

    def test_sorted_by_start(self):
        fn = lower(
            """
fn f(a: int) -> int {
  var x: int = a + 1;
  var y: int = x * 2;
  var z: int = y - 3;
  return z;
}
"""
        )
        intervals = compute_intervals(fn)
        starts = [iv.start for iv in intervals]
        assert starts == sorted(starts)

    def test_loop_value_spans_whole_loop(self):
        fn = lower(
            """
fn f(n: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < n) { s = s + i; i = i + 1; }
  return s;
}
"""
        )
        intervals = compute_intervals(fn)
        spans = number_instructions(fn)
        loop_blocks = [
            b for b in fn.blocks.values() if b.predecessors and b.successors
        ]
        # The accumulator's interval must cover every loop position.
        widest = max(intervals, key=lambda iv: iv.end - iv.start)
        last_loop_position = max(spans[b.id][1] for b in loop_blocks)
        assert widest.end >= last_loop_position - 1

    def test_overlap_predicate(self):
        from repro.backend.liveness import LiveInterval
        from repro.backend.lir import fresh_vreg

        a = LiveInterval(fresh_vreg(), 0, 5)
        b = LiveInterval(fresh_vreg(), 5, 9)
        c = LiveInterval(fresh_vreg(), 6, 9)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)

    def test_params_start_at_zero(self):
        fn = lower("fn f(a: int, b: int) -> int { return a + b; }")
        intervals = {iv.vreg: iv for iv in compute_intervals(fn)}
        for reg in fn.param_regs:
            assert intervals[reg].start == 0
