"""Experiment A1 — ablation of the Section 5.4 trade-off factors.

The paper derives three decisive factors for ``shouldDuplicate``:
(1) the maximum compilation-unit size, (2) the code-size increase
budget, and (3) profile probabilities — and fixes BenefitScale = 256
empirically.  These benches sweep each factor and regenerate the
corresponding trade-off curves:

* benefit-scale sweep: smaller scales duplicate less (less code, less
  speedup); very large scales converge toward dupalot;
* probability ablation: ignoring probabilities spends budget on cold
  paths (>= code size at <= speedup);
* budget sweep: the increase budget caps code growth monotonically.
"""

import dataclasses

from _support import record_figure

from repro.bench.harness import measure_workload
from repro.bench.stats import format_percent, geometric_mean
from repro.bench.workloads.suites import MICRO, SCALA_DACAPO, generate_workload
from repro.pipeline.config import BASELINE, DBDS

WORKLOADS = [
    (MICRO, "akkaPP"),
    (MICRO, "chisquare"),
    (SCALA_DACAPO, "kiama"),
    (SCALA_DACAPO, "scalap"),
]


def _suite_metrics(config):
    ratios_perf, ratios_size, dups = [], [], 0
    for profile, name in WORKLOADS:
        workload = generate_workload(profile, name)
        base = measure_workload(workload, BASELINE)
        measured = measure_workload(workload, config)
        ratios_perf.append(base.cycles / max(measured.cycles, 1e-9))
        ratios_size.append(measured.code_size / max(base.code_size, 1e-9))
        dups += measured.duplications
    return (
        (geometric_mean(ratios_perf) - 1) * 100,
        (geometric_mean(ratios_size) - 1) * 100,
        dups,
    )


def test_benefit_scale_sweep(benchmark):
    scales = [1.0, 16.0, 256.0, 4096.0]

    def sweep():
        return {
            scale: _suite_metrics(DBDS.with_trade_off(benefit_scale=scale))
            for scale in scales
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["=== BenefitScale sweep (paper fixes BS = 256) ===",
             f"{'scale':>8s}{'perf':>10s}{'size':>10s}{'dups':>7s}"]
    for scale, (perf, size, dups) in results.items():
        lines.append(
            f"{scale:>8.0f}{format_percent(perf):>10s}"
            f"{format_percent(size):>10s}{dups:>7d}"
        )
    record_figure("ablation_benefit_scale", "\n".join(lines))
    # More permissive scales never duplicate less.
    dup_counts = [results[s][2] for s in scales]
    assert dup_counts == sorted(dup_counts)


def test_probability_ablation(benchmark):
    def run_both():
        with_p = _suite_metrics(DBDS)
        without_p = _suite_metrics(DBDS.with_trade_off(use_probability=False))
        return with_p, without_p

    (with_p, without_p) = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_figure(
        "ablation_probability",
        "=== Probability ablation (factor 3 of Section 5.4) ===\n"
        f"with probabilities   : perf {format_percent(with_p[0])}, "
        f"size {format_percent(with_p[1])}, dups {with_p[2]}\n"
        f"without probabilities: perf {format_percent(without_p[0])}, "
        f"size {format_percent(without_p[1])}, dups {without_p[2]}",
    )
    # Ignoring probability spends budget on cold paths: never less code.
    assert without_p[2] >= with_p[2]


def test_increase_budget_sweep(benchmark):
    budgets = [1.0, 1.25, 1.5, 3.0]

    def sweep():
        return {
            b: _suite_metrics(DBDS.with_trade_off(increase_budget=b))
            for b in budgets
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["=== Code-size IncreaseBudget sweep (paper fixes IB = 1.5) ===",
             f"{'budget':>8s}{'perf':>10s}{'size':>10s}{'dups':>7s}"]
    for budget, (perf, size, dups) in results.items():
        lines.append(
            f"{budget:>8.2f}{format_percent(perf):>10s}"
            f"{format_percent(size):>10s}{dups:>7d}"
        )
    record_figure("ablation_increase_budget", "\n".join(lines))
    dup_counts = [results[b][2] for b in budgets]
    assert dup_counts == sorted(dup_counts)
