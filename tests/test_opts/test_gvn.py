"""Tests for global value numbering."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter
from repro.ir import ArithOp, BinOp, Compare, verify_graph
from repro.opts.gvn import GlobalValueNumberingPhase


def count_arith(graph):
    return sum(
        1 for b in graph.blocks for i in b.instructions if isinstance(i, ArithOp)
    )


def run_gvn(source: str, name: str = "f"):
    program = compile_source(source)
    graph = program.function(name)
    eliminated = GlobalValueNumberingPhase().run(graph)
    verify_graph(graph)
    return program, graph, eliminated


class TestBasicNumbering:
    def test_same_block_duplicate(self):
        _, graph, eliminated = run_gvn(
            "fn f(a: int, b: int) -> int { return (a + b) * (a + b); }"
        )
        assert eliminated == 1
        assert count_arith(graph) == 2  # one Add + one Mul

    def test_commutative_operands_match(self):
        _, graph, eliminated = run_gvn(
            "fn f(a: int, b: int) -> int { return (a + b) - (b + a); }"
        )
        assert eliminated == 1

    def test_non_commutative_order_matters(self):
        _, graph, eliminated = run_gvn(
            "fn f(a: int, b: int) -> int { return (a - b) + (b - a); }"
        )
        assert eliminated == 0

    def test_different_ops_not_merged(self):
        _, graph, eliminated = run_gvn(
            "fn f(a: int, b: int) -> int { return (a + b) + (a * b); }"
        )
        assert eliminated == 0

    def test_comparisons_numbered(self):
        _, graph, eliminated = run_gvn(
            "fn f(a: int, b: int) -> bool { return (a < b) == (a < b); }"
        )
        assert eliminated == 1

    def test_trapping_div_with_same_operands_numbered(self):
        program, graph, eliminated = run_gvn(
            "fn f(a: int, b: int) -> int { return (a / b) + (a / b); }"
        )
        assert eliminated == 1
        # Trap behaviour preserved: still traps on b == 0.
        assert Interpreter(program).run("f", [1, 0]).trapped
        assert Interpreter(program).run("f", [8, 2]).value == 8


class TestDominanceScoping:
    def test_dominating_occurrence_reused(self):
        _, graph, eliminated = run_gvn(
            """
fn f(a: int, b: int) -> int {
  var x: int = a * b;
  if (a > 0) { return x + a * b; }
  return x;
}
"""
        )
        assert eliminated == 1

    def test_sibling_branches_not_shared(self):
        # Neither branch dominates the other: both copies must stay.
        _, graph, eliminated = run_gvn(
            """
fn f(a: int, b: int) -> int {
  if (a > 0) { return a * b; }
  return a * b;
}
"""
        )
        assert eliminated == 0

    def test_value_escaping_scope_not_reused_after(self):
        # A value computed inside a branch is unavailable at the merge.
        _, graph, eliminated = run_gvn(
            """
fn f(a: int, b: int) -> int {
  var r: int = 0;
  if (a > 0) { r = a * b; }
  return r + a * b;
}
"""
        )
        assert eliminated == 0


class TestSemantics:
    def test_behaviour_preserved(self):
        source = """
fn f(a: int, b: int) -> int {
  var s: int = (a + b) * (a + b);
  if (a < b) { s = s + (a + b); }
  var t: int = a * 31 + b;
  return s + t + (a * 31 + b);
}
"""
        program = compile_source(source)
        expected = [
            Interpreter(program).run("f", [i, j]).value
            for i in range(-3, 4)
            for j in range(-3, 4)
        ]
        GlobalValueNumberingPhase().run(program.function("f"))
        verify_graph(program.function("f"))
        actual = [
            Interpreter(program).run("f", [i, j]).value
            for i in range(-3, 4)
            for j in range(-3, 4)
        ]
        assert actual == expected

    def test_loop_scoped_correctly(self):
        program, graph, _ = run_gvn(
            """
fn f(n: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < n) { s = s + i * 2 + i * 2; i = i + 1; }
  return s;
}
"""
        )
        assert Interpreter(program).run("f", [5]).value == 40
