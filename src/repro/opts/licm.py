"""Loop-invariant code motion.

Pure, non-trapping instructions whose operands are defined outside a
loop (or were themselves hoisted) move to the loop's pre-header — they
compute the same value on every iteration and cannot fault, so
executing them once is both safe and cheaper.  Graal gets this effect
from its global code motion / scheduling; here it is an explicit phase
in the cleanup pipeline.

Loops are processed innermost-first so invariants bubble outward
through nested loops.
"""

from __future__ import annotations

from ..ir.block import Block
from ..ir.graph import Graph
from ..ir.loops import Loop
from ..ir.nodes import ArithOp, Compare, Goto, Instruction, Neg, Not
from .base import Phase


def _is_hoistable(instruction: Instruction) -> bool:
    if isinstance(instruction, (Compare, Not, Neg)):
        return True
    if isinstance(instruction, ArithOp):
        return not instruction.op.can_trap
    return False


class LoopInvariantCodeMotionPhase(Phase):
    """Hoist loop-invariant pure computations to pre-headers."""

    name = "loop-invariant-code-motion"

    def run(self, graph: Graph) -> int:
        forest = graph.loop_forest()
        hoisted = 0
        # Innermost loops first: larger depth first.
        for loop in sorted(forest.loops, key=lambda l: -l.depth):
            hoisted += self._hoist_loop(graph, loop)
        return hoisted

    # ------------------------------------------------------------------
    def _preheader(self, loop: Loop) -> Block | None:
        """The unique non-back-edge predecessor of the loop header,
        which (by the critical-edge invariant) ends in a Goto."""
        entries = [
            pred
            for pred in loop.header.predecessors
            if pred not in loop.back_edge_predecessors
        ]
        if len(entries) != 1:
            return None
        preheader = entries[0]
        if not isinstance(preheader.terminator, Goto):
            return None
        if preheader in loop.blocks:
            return None
        return preheader

    def _hoist_loop(self, graph: Graph, loop: Loop) -> int:
        preheader = self._preheader(loop)
        if preheader is None:
            return 0
        hoisted = 0
        changed = True
        while changed:
            changed = False
            for block in self._loop_blocks_in_order(graph, loop):
                for ins in list(block.instructions):
                    if not _is_hoistable(ins):
                        continue
                    if not self._operands_invariant(ins, loop):
                        continue
                    self._move(ins, preheader)
                    hoisted += 1
                    changed = True
        return hoisted

    @staticmethod
    def _loop_blocks_in_order(graph: Graph, loop: Loop):
        from ..ir.cfgutils import reverse_post_order

        for block in reverse_post_order(graph):
            if block in loop.blocks:
                yield block

    @staticmethod
    def _operands_invariant(ins: Instruction, loop: Loop) -> bool:
        for operand in ins.inputs:
            block = getattr(operand, "block", None)
            if block is not None and block in loop.blocks:
                return False
        return True

    @staticmethod
    def _move(ins: Instruction, preheader: Block) -> None:
        ins.block.instructions.remove(ins)
        ins.block = preheader
        preheader.instructions.append(ins)
