"""Poking at the DBDS machinery directly: simulate, rank, decide.

This example drives the three tiers by hand instead of through the
pipeline — useful to understand what the phase does and to debug
trade-off decisions:

1. the **simulation tier** lists every predecessor-merge pair with its
   estimated cycles-saved, code-size cost and probability;
2. the **trade-off tier** ranks them and applies `shouldDuplicate`
   (b x p x 256 > c, plus the size budgets);
3. the **optimization tier** performs one chosen duplication.

Run:  python examples/explore_simulation.py
"""

from repro import (
    SimulationTier,
    compile_source,
    duplicate_into,
    profile_program,
    apply_profile,
    should_duplicate,
    sort_candidates,
    verify_graph,
)
from repro.costmodel.estimator import graph_code_size

SOURCE = """
fn hot(x: int, y: int) -> int {
  var p: int;
  if (x > 4) { p = x; } else { p = 2; }
  if (y >= 0) { return y / p; }
  return p * 3 + y;
}
fn main(n: int) -> int {
  var acc: int = 0;
  var i: int = 0;
  while (i < n) { acc = acc + hot(i, acc); i = i + 1; }
  return acc;
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    collector = profile_program(program, "main", [[25]])
    apply_profile(program, collector)
    graph = program.function("hot")

    print("IR before duplication:")
    print(graph.describe())
    print()

    # Tier 1: simulation.
    tier = SimulationTier(graph, program)
    candidates = tier.run()
    print(f"simulation found {len(candidates)} predecessor-merge pairs:")
    for c in candidates:
        print(
            f"  {c.merge.name} -> {c.pred.name}: benefit={c.benefit:.1f} "
            f"cycles, cost={c.cost:.1f}, p={c.probability:.2f}, "
            f"fired={sorted(set(c.reasons))}"
        )
    print()

    # Tier 2: trade-off.
    initial_size = graph_code_size(graph)
    ranked = sort_candidates(candidates)
    decisions = [
        (c, should_duplicate(c, graph_code_size(graph), initial_size))
        for c in ranked
    ]
    for c, accepted in decisions:
        verdict = "DUPLICATE" if accepted else "skip"
        print(f"  shouldDuplicate({c.merge.name}->{c.pred.name}) = {verdict}")
    print()

    # Tier 3: optimization — perform the best accepted candidate.
    chosen = next((c for c, ok in decisions if ok), None)
    if chosen is None:
        print("no candidate passed the trade-off")
        return
    duplicate_into(graph, chosen.pred, chosen.merge)
    verify_graph(graph)
    print(f"after duplicating {chosen.merge.name} into {chosen.pred.name}:")
    print(graph.describe())


if __name__ == "__main__":
    main()
