"""Size-budgeted direct-call inlining.

The Graal front end inlines before DBDS runs (Section 5.1) — many
duplication opportunities (boxing, accessors) only exist after inlining,
which is why the workload generators lean on small helper functions.

Inlining splices a clone of the callee between the call block and a
continuation block; multiple returns merge at the continuation with a
phi over the returned values.  Probabilities and trip counts survive via
the shared cloning helpers.
"""

from __future__ import annotations

from typing import Optional

from ..ir.block import Block
from ..ir.cfgutils import canonical_cfg_cleanup
from ..ir.copy import clone_instruction, clone_terminator
from ..ir.graph import Graph, Program
from .base import Phase
from ..ir.nodes import Call, Constant, Goto, Phi, Return, Value
from ..ir.types import VOID


class InliningPhase(Phase):
    """Iteratively inline small callees into a caller graph."""

    name = "inlining"

    def __init__(
        self,
        program: Program,
        max_callee_size: int = 80,
        max_rounds: int = 4,
        caller_growth_factor: float = 4.0,
        caller_size_cap: int = 2000,
    ) -> None:
        self.program = program
        self.max_callee_size = max_callee_size
        self.max_rounds = max_rounds
        self.caller_growth_factor = caller_growth_factor
        self.caller_size_cap = caller_size_cap

    def run(self, graph: Graph) -> int:
        initial_size = max(graph.instruction_count(), 1)
        budget = min(initial_size * self.caller_growth_factor, self.caller_size_cap)
        inlined = 0
        for _ in range(self.max_rounds):
            calls = [
                ins
                for block in graph.blocks
                for ins in block.instructions
                if isinstance(ins, Call)
            ]
            progress = False
            for call in calls:
                if call.block is None:
                    continue
                if graph.instruction_count() >= budget:
                    break
                if self._should_inline(graph, call):
                    self.inline_call(graph, call)
                    inlined += 1
                    progress = True
            if not progress:
                break
        if inlined:
            canonical_cfg_cleanup(graph)
        return inlined

    def _should_inline(self, graph: Graph, call: Call) -> bool:
        if call.callee == graph.name:
            return False  # direct recursion
        callee = self.program.functions.get(call.callee)
        if callee is None:
            return False
        if callee.instruction_count() > self.max_callee_size:
            return False
        # A callee that never returns would leave the continuation
        # unreachable and the call result undefined; keep the call.
        if not any(isinstance(b.terminator, Return) for b in callee.blocks):
            return False
        return True

    # ------------------------------------------------------------------
    def inline_call(self, graph: Graph, call: Call) -> None:
        """Replace one call site by a clone of the callee body."""
        callee = self.program.function(call.callee)
        call_block = call.block
        call_index = call_block.instructions.index(call)

        # 1. Split the call block: everything after the call moves into a
        #    fresh continuation block, which inherits the terminator.
        continuation = graph.new_block(f"inl_{call.callee}_ret")
        for ins in call_block.instructions[call_index + 1 :]:
            ins.block = continuation
            continuation.instructions.append(ins)
        del call_block.instructions[call_index + 1 :]
        terminator = call_block.terminator
        call_block.terminator = None
        continuation.terminator = terminator
        terminator.block = continuation
        for target in terminator.targets:
            index = target.predecessor_index(call_block)
            target.predecessors[index] = continuation

        # 2. Clone the callee body into the caller.
        value_map: dict[Value, Value] = {
            param: arg for param, arg in zip(callee.parameters, call.args)
        }
        block_map: dict[Block, Block] = {}
        for src in callee.blocks:
            dst = graph.new_block(f"inl_{call.callee}_{src.name}")
            trips = getattr(src, "profile_trip_count", None)
            if trips is not None:
                dst.profile_trip_count = trips
            block_map[src] = dst

        def mapped(value: Value) -> Value:
            known = value_map.get(value)
            if known is not None:
                return known
            if isinstance(value, Constant):
                cloned = graph.constant(value.value, value.type)
                value_map[value] = cloned
                return cloned
            raise KeyError(f"unmapped value {value!r} while inlining {call.callee}")

        from ..ir.copy import clone_order

        order = clone_order(callee)
        pending_phis: list[tuple[Phi, Phi]] = []
        for src in order:
            dst = block_map[src]
            for phi in src.phis:
                clone = Phi(dst, phi.type, [])
                dst.add_phi(clone)
                value_map[phi] = clone
                pending_phis.append((phi, clone))
        for src in order:
            dst = block_map[src]
            for ins in src.instructions:
                value_map[ins] = dst.append(clone_instruction(ins, mapped))

        # 3. Terminators: returns become Gotos to the continuation.
        return_sites: list[tuple[Block, Optional[Value]]] = []
        for src in callee.blocks:
            dst = block_map[src]
            term = src.terminator
            if isinstance(term, Return):
                value = mapped(term.value) if term.value is not None else None
                return_sites.append((dst, value))
                dst.set_terminator(Goto(continuation))
            else:
                dst.set_terminator(
                    clone_terminator(term, mapped, lambda b: block_map[b])
                )
        for src in callee.blocks:
            dst = block_map[src]
            desired = [block_map[p] for p in src.predecessors]
            actual_non_entry = [p for p in dst.predecessors if p in desired]
            if actual_non_entry != desired:
                others = [p for p in dst.predecessors if p not in desired]
                dst.predecessors = desired + others
        for old_phi, new_phi in pending_phis:
            for value in old_phi.inputs:
                new_phi._append_input(mapped(value))

        # 4. Jump into the callee entry and wire the return value.
        call_block.set_terminator(Goto(block_map[callee.entry]))
        if call.type != VOID and call.has_uses():
            if len(return_sites) == 1:
                replacement = return_sites[0][1]
            else:
                # Continuation predecessor order: return_sites were
                # wired via set_terminator in callee block order, and
                # those Gotos are its only predecessors.
                order = {
                    block: value for block, value in return_sites
                }
                inputs = [order[pred] for pred in continuation.predecessors]
                phi = Phi(continuation, call.type, inputs)
                continuation.add_phi(phi)
                replacement = phi
            call.replace_all_uses(replacement)
        call_block.remove_instruction(call)
