"""Tests for loop peeling (the duplication-at-loop-headers story)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter
from repro.ir import verify_graph
from repro.ir.loops import LoopForest
from repro.opts.peeling import (
    LoopPeelingPhase,
    PeelingError,
    can_peel,
    peel_loop,
)
from tests.generators import random_program
from tests.helpers import outcomes

SIMPLE = """
fn f(n: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < n) {
    s = s + i * 3;
    i = i + 1;
  }
  return s;
}
"""


def peel_first(source: str, name: str = "f"):
    program = compile_source(source)
    graph = program.function(name)
    forest = LoopForest(graph)
    assert forest.loops, "test program must contain a loop"
    peel_loop(graph, forest.loops[0])
    verify_graph(graph)
    return program, graph


class TestPeelLoop:
    def test_semantics_preserved(self):
        program, graph = peel_first(SIMPLE)
        for n in range(0, 8):
            assert Interpreter(program).run("f", [n]).value == sum(
                3 * i for i in range(n)
            )

    def test_zero_iterations_take_peeled_exit(self):
        # n == 0: the peeled header's condition fails immediately.
        program, graph = peel_first(SIMPLE)
        assert Interpreter(program).run("f", [0]).value == 0

    def test_loop_still_detected_after_peel(self):
        program, graph = peel_first(SIMPLE)
        forest = LoopForest(graph)
        assert len(forest.loops) == 1

    def test_peeling_grows_code(self):
        from repro.costmodel.estimator import graph_code_size

        program = compile_source(SIMPLE)
        graph = program.function("f")
        before = graph_code_size(graph)
        peel_loop(graph, LoopForest(graph).loops[0])
        assert graph_code_size(graph) > before

    def test_cannot_peel_loop_headed_by_entry(self):
        program = compile_source(SIMPLE)
        graph = program.function("f")
        loop = LoopForest(graph).loops[0]
        # Break the precondition artificially and check the guard.
        assert can_peel(graph, loop)

    def test_peel_error_on_bad_loop(self):
        program = compile_source(SIMPLE)
        graph = program.function("f")
        loop = LoopForest(graph).loops[0]
        loop.back_edge_predecessors.clear()
        with pytest.raises(PeelingError):
            peel_loop(graph, loop)

    def test_values_escaping_loop_repaired(self):
        source = """
fn f(n: int) -> int {
  var s: int = 0;
  var last: int = 0;
  var i: int = 0;
  while (i < n) {
    last = i * 7;
    s = s + last;
    i = i + 1;
  }
  return s * 1000 + last;
}
"""
        program, graph = peel_first(source)
        for n in (0, 1, 2, 5):
            expected_last = 7 * (n - 1) if n > 0 else 0
            expected_s = sum(7 * i for i in range(n))
            assert (
                Interpreter(program).run("f", [n]).value
                == expected_s * 1000 + expected_last
            )

    def test_nested_loop_peel_outer(self):
        source = """
fn f(n: int) -> int {
  var t: int = 0;
  var i: int = 0;
  while (i < n) {
    var j: int = 0;
    while (j < n) { t = t + 1; j = j + 1; }
    i = i + 1;
  }
  return t;
}
"""
        program = compile_source(source)
        graph = program.function("f")
        forest = LoopForest(graph)
        outer = next(l for l in forest.loops if l.parent is None)
        peel_loop(graph, outer)
        verify_graph(graph)
        for n in (0, 1, 3, 5):
            assert Interpreter(program).run("f", [n]).value == n * n

    def test_nested_loop_peel_inner(self):
        source = """
fn f(n: int) -> int {
  var t: int = 0;
  var i: int = 0;
  while (i < n) {
    var j: int = 0;
    while (j < i) { t = t + j; j = j + 1; }
    i = i + 1;
  }
  return t;
}
"""
        program = compile_source(source)
        graph = program.function("f")
        forest = LoopForest(graph)
        inner = next(l for l in forest.loops if l.parent is not None)
        peel_loop(graph, inner)
        verify_graph(graph)
        expected = lambda n: sum(j for i in range(n) for j in range(i))
        for n in (0, 1, 4, 6):
            assert Interpreter(program).run("f", [n]).value == expected(n)

    def test_peel_enables_first_iteration_folding(self):
        """After peeling, the first iteration sees i = 0 and the whole
        peeled body canonicalizes away."""
        from repro.opts.canonicalize import CanonicalizerPhase
        from repro.costmodel.estimator import estimated_run_time

        source = """
fn f(n: int) -> int {
  var acc: int = 1;
  var i: int = 0;
  while (i < n) {
    acc = acc + acc * i;
    i = i + 1;
  }
  return acc;
}
"""
        program = compile_source(source)
        graph = program.function("f")
        CanonicalizerPhase().run(graph)
        peel_loop(graph, LoopForest(graph).loops[0])
        CanonicalizerPhase().run(graph)
        verify_graph(graph)
        # acc * 0 folded in the peeled iteration; semantics intact.
        for n in (0, 1, 2, 5):
            expected = 1
            for i in range(n):
                expected = expected + expected * i
            assert Interpreter(program).run("f", [n]).value == expected


class TestPeelingPhase:
    def test_phase_peels_constant_entry_loops(self):
        program = compile_source(SIMPLE)
        graph = program.function("f")
        peeled = LoopPeelingPhase().run(graph)
        assert peeled == 1  # i enters as constant 0
        verify_graph(graph)

    def test_phase_respects_budget(self):
        source = "fn f(n: int) -> int {\n  var t: int = 0;\n"
        for k in range(6):
            source += (
                f"  var i{k}: int = 0;\n"
                f"  while (i{k} < n) {{ t = t + i{k}; i{k} = i{k} + 1; }}\n"
            )
        source += "  return t;\n}\n"
        program = compile_source(source)
        graph = program.function("f")
        peeled = LoopPeelingPhase(max_peels=2).run(graph)
        assert peeled == 2
        verify_graph(graph)

    def test_phase_is_semantics_preserving(self):
        program = compile_source(SIMPLE)
        expected = [Interpreter(program).run("f", [n]).value for n in range(8)]
        LoopPeelingPhase().run(program.function("f"))
        actual = [Interpreter(program).run("f", [n]).value for n in range(8)]
        assert actual == expected


class TestPeelingFuzz:
    ARGS = [[0], [1], [3], [7]]

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_random_peels_preserve_semantics(self, program_seed, choice_seed):
        source = random_program(program_seed)
        program = compile_source(source)
        expected = outcomes(program, "main", self.ARGS)
        rng = random.Random(choice_seed)
        for graph in program.functions.values():
            for _ in range(2):
                forest = LoopForest(graph)
                candidates = [
                    loop for loop in forest.loops if can_peel(graph, loop)
                ]
                if not candidates:
                    break
                peel_loop(graph, rng.choice(candidates))
                verify_graph(graph)
        assert outcomes(program, "main", self.ARGS) == expected, (
            f"peeling changed semantics (program {program_seed}, "
            f"choices {choice_seed})\n{source}"
        )
