"""Seeded corruption campaigns against cached bytecode artifacts.

The load-time verifier's acceptance bar is *"no corrupted instruction
stream ever reaches a dispatch loop"*.  This module turns that into a
repeatable experiment: compile a small corpus, persist the artifacts
through :class:`~repro.pipeline.cache.ArtifactCache`, then — hundreds
of times, driven by one seed — decode an entry, apply a single targeted
mutation (bit flips, opcode swaps, register redirects, cost and weight
perturbations, branch retargets, dropped fusion halves, template and
block-table tampering), **re-sign the file with a valid digest**, and
assert the verifying cache still rejects it at load.

Re-signing matters: the whole-payload digest only proves the file
matches the bytes someone wrote, so an adversarial (or buggy) writer
defeats it trivially.  Every structural mutation here carries a correct
digest; only the two bit-flip kinds leave it stale, keeping that layer
honest too.  Used by ``repro check --fuzz-corruption N`` and the CI
fuzz step.
"""

from __future__ import annotations

import hashlib
import pickle
import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Sequence

from ...vm.bytecode import OP_ADD, OP_GE
from ...vm.machine import XHANDLERS
from ...vm.translate import translate_program

#: small but representative: arithmetic + loop, recursion + calls,
#: arrays + globals — enough to populate every instruction family the
#: translator emits for real programs.
DEFAULT_CORPUS = (
    (
        "loops",
        """
        fn main(n: int) -> int {
          var acc: int = 0;
          var i: int = 0;
          while (i < n) {
            if (i % 3 == 0) { acc = acc + i * 2; }
            else { acc = acc - 1; }
            i = i + 1;
          }
          return acc;
        }
        """,
    ),
    (
        "calls",
        """
        fn fib(n: int) -> int {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        fn main(n: int) -> int {
          var total: int = 0;
          var i: int = 0;
          while (i < n) {
            total = total + fib(i);
            i = i + 1;
          }
          return total;
        }
        """,
    ),
    (
        "arrays",
        """
        fn fill(data: int[], n: int) -> int {
          var i: int = 0;
          while (i < n) {
            data[i] = i * i;
            i = i + 1;
          }
          return n;
        }
        fn main(n: int) -> int {
          var data: int[] = new int[n];
          fill(data, n);
          var sum: int = 0;
          var i: int = 0;
          while (i < n) {
            sum = sum + data[i];
            i = i + 1;
          }
          return sum;
        }
        """,
    ),
)

_ARITH_CMP = frozenset(range(OP_ADD, OP_GE + 1))


@dataclass
class CorruptionRecord:
    """One mutation attempt and its fate."""

    index: int
    target: str
    kind: str
    detail: str
    rejected: bool
    evict_reason: str = ""


@dataclass
class CorruptionReport:
    """Outcome of a whole campaign."""

    seed: int
    total: int = 0
    rejected: int = 0
    records: list[CorruptionRecord] = field(default_factory=list)
    kinds: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.total > 0 and self.rejected == self.total

    def accepted(self) -> list[CorruptionRecord]:
        return [r for r in self.records if not r.rejected]

    def format(self) -> str:
        lines = [
            f"corruption campaign (seed {self.seed}): "
            f"{self.rejected}/{self.total} mutation(s) rejected at load"
        ]
        for kind in sorted(self.kinds):
            lines.append(f"  {kind}: {self.kinds[kind]}")
        for record in self.accepted():
            lines.append(
                f"  NOT REJECTED: #{record.index} {record.kind} on "
                f"{record.target}: {record.detail}"
            )
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "total": self.total,
            "rejected": self.rejected,
            "ok": self.ok,
            "kinds": dict(sorted(self.kinds.items())),
            "accepted": [
                {
                    "index": r.index,
                    "target": r.target,
                    "kind": r.kind,
                    "detail": r.detail,
                }
                for r in self.accepted()
            ],
        }


# ----------------------------------------------------------------------
# Mutators.  Each takes (rng, bytecode) on freshly unpickled objects,
# applies at most one change and returns a description string, or None
# when the function offers no site for this kind (the driver then tries
# the next kind).  Every applied mutation is guaranteed to differ from
# the pristine artifact, so at minimum the retranslation-equivalence
# checker must fire.
# ----------------------------------------------------------------------
def _pick_fn(rng, bytecode, need_xcode=False):
    names = sorted(
        name
        for name, fn in bytecode.functions.items()
        if len(fn.code) >= 2 and (not need_xcode or fn.xcode)
    )
    if not names:
        return None
    return bytecode.functions[rng.choice(names)]


def _replace_code(fn, pc, ins) -> None:
    code = list(fn.code)
    code[pc] = ins
    fn.code = tuple(code)


def _mut_opcode(rng, bytecode):
    fn = _pick_fn(rng, bytecode)
    if fn is None:
        return None
    pc = rng.randrange(len(fn.code))
    ins = fn.code[pc]
    new_op = rng.randrange(len(XHANDLERS))
    while new_op == ins[0]:
        new_op = rng.randrange(len(XHANDLERS))
    _replace_code(fn, pc, (new_op,) + ins[1:])
    return f"{fn.name}: code[{pc}] opcode {ins[0]} -> {new_op}"


def _mut_register(rng, bytecode):
    fn = _pick_fn(rng, bytecode)
    if fn is None or fn.nregs < 2:
        return None
    sites = [
        pc for pc, ins in enumerate(fn.code) if ins[0] in _ARITH_CMP
    ]
    if not sites:
        return None
    pc = rng.choice(sites)
    ins = fn.code[pc]
    slot = rng.choice((3, 4, 5))
    reg = ins[slot]
    new_reg = (reg + 1 + rng.randrange(fn.nregs - 1)) % fn.nregs
    _replace_code(
        fn, pc, ins[:slot] + (new_reg,) + ins[slot + 1:]
    )
    return f"{fn.name}: code[{pc}] slot {slot} r{reg} -> r{new_reg}"


def _mut_cost(rng, bytecode):
    fn = _pick_fn(rng, bytecode)
    if fn is None:
        return None
    pc = rng.randrange(len(fn.code))
    ins = fn.code[pc]
    _replace_code(fn, pc, ins[:1] + (ins[1] + 1,) + ins[2:])
    return f"{fn.name}: code[{pc}] cost {ins[1]} -> {ins[1] + 1}"


def _mut_branch(rng, bytecode):
    fn = _pick_fn(rng, bytecode)
    if fn is None:
        return None
    sites = []
    for pc, ins in enumerate(fn.code):
        for slot, operand in enumerate(ins):
            if (
                isinstance(operand, tuple)
                and len(operand) == 4
                and isinstance(operand[0], int)
            ):
                sites.append((pc, slot))
    if not sites:
        return None
    pc, slot = rng.choice(sites)
    ins = fn.code[pc]
    edge = ins[slot]
    new_target = (edge[0] + 1 + rng.randrange(len(fn.code))) % (
        len(fn.code) + 1
    )
    if new_target == edge[0]:
        new_target = (new_target + 1) % (len(fn.code) + 1)
    new_edge = (new_target,) + edge[1:]
    _replace_code(
        fn, pc, ins[:slot] + (new_edge,) + ins[slot + 1:]
    )
    return (
        f"{fn.name}: code[{pc}] branch target "
        f"{edge[0]} -> {new_target}"
    )


def _mut_swap(rng, bytecode):
    fn = _pick_fn(rng, bytecode)
    if fn is None:
        return None
    sites = [
        pc
        for pc in range(len(fn.code) - 1)
        if fn.code[pc] != fn.code[pc + 1]
    ]
    if not sites:
        return None
    pc = rng.choice(sites)
    code = list(fn.code)
    code[pc], code[pc + 1] = code[pc + 1], code[pc]
    fn.code = tuple(code)
    return f"{fn.name}: swapped code[{pc}] and code[{pc + 1}]"


def _xcode_sites(fn, min_weight=1):
    """(pc, ins) for every executable fast-stream site."""
    sites = []
    pc = 0
    while pc < len(fn.xcode):
        ins = fn.xcode[pc]
        weight = ins[-1]
        if weight >= min_weight:
            sites.append((pc, ins))
        pc += weight if isinstance(weight, int) and weight >= 1 else 1
    return sites


def _mut_xopcode(rng, bytecode):
    fn = _pick_fn(rng, bytecode, need_xcode=True)
    if fn is None:
        return None
    sites = _xcode_sites(fn)
    pc, ins = rng.choice(sites)
    new_op = rng.randrange(len(XHANDLERS))
    while new_op == ins[0]:
        new_op = rng.randrange(len(XHANDLERS))
    fn.xcode[pc] = (new_op,) + ins[1:]
    return f"{fn.name}: xcode[{pc}] opcode {ins[0]} -> {new_op}"


def _mut_xcost(rng, bytecode):
    fn = _pick_fn(rng, bytecode, need_xcode=True)
    if fn is None:
        return None
    sites = _xcode_sites(fn)
    pc, ins = rng.choice(sites)
    fn.xcode[pc] = ins[:1] + (ins[1] + 1,) + ins[2:]
    return f"{fn.name}: xcode[{pc}] cost {ins[1]} -> {ins[1] + 1}"


def _mut_weight(rng, bytecode):
    fn = _pick_fn(rng, bytecode, need_xcode=True)
    if fn is None:
        return None
    sites = _xcode_sites(fn)
    pc, ins = rng.choice(sites)
    weight = ins[-1]
    new_weight = weight + 1 if weight == 1 else weight - 1
    fn.xcode[pc] = ins[:-1] + (new_weight,)
    return f"{fn.name}: xcode[{pc}] weight {weight} -> {new_weight}"


def _mut_halves(rng, bytecode):
    fn = _pick_fn(rng, bytecode, need_xcode=True)
    if fn is None:
        return None
    sites = _xcode_sites(fn, min_weight=2)
    if not sites:
        return None
    pc, ins = rng.choice(sites)
    fn.xcode[pc] = ins[:-2] + ((), ins[-1])
    return f"{fn.name}: xcode[{pc}] fusion halves dropped"


def _mut_template(rng, bytecode):
    candidates = []
    for name, fn in sorted(bytecode.functions.items()):
        for reg in range(fn.const_base, fn.const_base + fn.const_count):
            if type(fn.template[reg]) is int:
                candidates.append((fn, reg))
    if not candidates:
        return None
    fn, reg = candidates[rng.randrange(len(candidates))]
    old = fn.template[reg]
    fn.template = list(fn.template)
    fn.template[reg] = old + 1 + rng.randrange(9)
    return (
        f"{fn.name}: template constant r{reg} "
        f"{old} -> {fn.template[reg]}"
    )


def _mut_blocks(rng, bytecode):
    fn = _pick_fn(rng, bytecode)
    if fn is None or not fn.blocks:
        return None
    fn.blocks = ()
    return f"{fn.name}: block table dropped"


#: structural mutators, applied to a freshly decoded artifact and
#: written back with a *valid* digest
_MUTATORS = (
    ("opcode", _mut_opcode),
    ("register", _mut_register),
    ("cost", _mut_cost),
    ("branch", _mut_branch),
    ("swap", _mut_swap),
    ("xopcode", _mut_xopcode),
    ("xcost", _mut_xcost),
    ("weight", _mut_weight),
    ("halves", _mut_halves),
    ("template", _mut_template),
    ("blocks", _mut_blocks),
)

#: raw bit flips, applied to the entry file's bytes
_BITFLIP_KINDS = ("bitflip-payload", "bitflip-file")


def _flip_bit(data: bytes, offset: int, bit: int) -> bytes:
    mutated = bytearray(data)
    mutated[offset] ^= 1 << bit
    return bytes(mutated)


def corruption_campaign(
    seed: int = 0,
    corruptions: int = 200,
    corpus: Optional[Sequence[tuple[str, str]]] = None,
    config=None,
    cache_dir: Optional[str] = None,
) -> CorruptionReport:
    """Run a seeded campaign of single-point artifact corruptions.

    Compiles ``corpus`` (name, source) pairs once, stores the artifacts
    in a verifying cache, then per iteration mutates one stored file
    and asserts :meth:`ArtifactCache.get` refuses it.  The pristine
    bytes are restored after every attempt, and the campaign ends with
    a sanity pass proving the untouched entries still load.
    """
    from ...pipeline.cache import (
        PICKLE_PROTOCOL,
        ArtifactCache,
        cache_key,
        make_entry,
        pack_artifact,
        unpack_artifact,
    )
    from ...pipeline.compiler import compile_and_profile
    from ...pipeline.config import CONFIGURATIONS

    if config is None:
        config = CONFIGURATIONS["dbds"]
    if corpus is None:
        corpus = DEFAULT_CORPUS
    rng = random.Random(seed)
    report = CorruptionReport(seed=seed)

    with tempfile.TemporaryDirectory(prefix="bccorrupt.") as tmp:
        cache = ArtifactCache(
            cache_dir if cache_dir is not None else tmp,
            verify_bytecode="load",
        )
        targets = []
        for name, source in corpus:
            program, comp_report = compile_and_profile(
                source, "main", [[10]], config
            )
            bytecode = translate_program(program)
            key = cache_key(source, config)
            cache.put(make_entry(key, program, comp_report, bytecode=bytecode))
            path = cache.path_for(key)
            targets.append((name, key, path, path.read_bytes()))

        for index in range(corruptions):
            name, key, path, pristine = targets[index % len(targets)]
            use_bitflip = rng.randrange(8) == 0
            if use_bitflip:
                kind = _BITFLIP_KINDS[rng.randrange(2)]
                _digest, payload = pristine.split(b"\n", 1)
                if kind == "bitflip-payload":
                    # flip inside the payload, digest left stale
                    offset = len(pristine) - len(payload)
                    offset += rng.randrange(len(payload))
                else:
                    offset = rng.randrange(len(pristine))
                bit = rng.randrange(8)
                mutated = _flip_bit(pristine, offset, bit)
                if mutated == pristine:  # cannot happen, but stay honest
                    continue
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_bytes(mutated)
                detail = f"bit {bit} at byte {offset}"
            else:
                _digest, payload = pristine.split(b"\n", 1)
                payload_dict = pickle.loads(payload)
                program, bytecode = unpack_artifact(
                    payload_dict["program_blob"]
                )
                start = rng.randrange(len(_MUTATORS))
                detail = kind = None
                for step in range(len(_MUTATORS)):
                    name_k, mutator = _MUTATORS[
                        (start + step) % len(_MUTATORS)
                    ]
                    detail = mutator(rng, bytecode)
                    if detail is not None:
                        kind = name_k
                        break
                if detail is None:
                    continue
                payload_dict["program_blob"] = pack_artifact(
                    program, bytecode
                )
                new_payload = pickle.dumps(
                    payload_dict, protocol=PICKLE_PROTOCOL
                )
                new_digest = hashlib.sha256(new_payload).hexdigest()
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_bytes(
                    new_digest.encode("ascii") + b"\n" + new_payload
                )

            loaded = cache.get(key)
            rejected = loaded is None
            report.total += 1
            report.rejected += int(rejected)
            report.kinds[kind] = report.kinds.get(kind, 0) + 1
            report.records.append(
                CorruptionRecord(
                    index=index,
                    target=name,
                    kind=kind,
                    detail=detail,
                    rejected=rejected,
                )
            )
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(pristine)

        for name, key, path, _pristine in targets:
            if cache.get(key) is None:
                report.records.append(
                    CorruptionRecord(
                        index=-1,
                        target=name,
                        kind="pristine",
                        detail="pristine artifact no longer loads",
                        rejected=False,
                    )
                )
                report.total += 1
    return report


__all__ = [
    "DEFAULT_CORPUS",
    "CorruptionRecord",
    "CorruptionReport",
    "corruption_campaign",
]
