"""Tests for the candidate-explanation reports."""

import pytest

from repro.dbds.explain import (
    CandidateExplanation,
    explain_candidates,
    explain_graph,
)
from repro.dbds.simulation import SimulationResult
from repro.dbds.tradeoff import TradeOffConfig
from repro.frontend.irbuilder import compile_source
from tests.helpers import build_diamond

SOURCE = """
fn f(x: int) -> int {
  var p: int;
  if (x > 0) { p = x; } else { p = 0; }
  return 2 + p;
}
"""


class TestExplainCandidates:
    def test_every_pair_explained(self):
        program = compile_source(SOURCE)
        graph = program.function("f")
        explanations = explain_candidates(graph, program)
        assert len(explanations) == 2

    def test_beneficial_candidate_accepted(self):
        program = compile_source(SOURCE)
        graph = program.function("f")
        explanations = explain_candidates(graph, program)
        accepted = [e for e in explanations if e.accepted]
        assert len(accepted) == 1
        assert "constant-fold" in accepted[0].candidate.reasons

    def test_simulation_left_graph_untouched(self):
        program = compile_source(SOURCE)
        graph = program.function("f")
        before = graph.describe()
        explain_candidates(graph, program)
        assert graph.describe() == before

    def test_threshold_term_reflects_config(self):
        program = compile_source(SOURCE)
        graph = program.function("f")
        strict = TradeOffConfig(benefit_scale=0.1)
        explanations = explain_candidates(graph, program, strict)
        assert all(not e.threshold_term for e in explanations)

    def test_unit_size_term(self):
        program = compile_source(SOURCE)
        graph = program.function("f")
        tiny = TradeOffConfig(max_unit_size=1.0)
        explanations = explain_candidates(graph, program, tiny)
        assert all(not e.unit_size_term for e in explanations)
        assert all("max size" in e.verdict() for e in explanations)

    def test_sorted_by_weighted_benefit(self):
        program = compile_source(SOURCE)
        graph = program.function("f")
        explanations = explain_candidates(graph, program)
        weights = [e.weighted for e in explanations]
        assert weights == sorted(weights, reverse=True)


class TestVerdictText:
    def _explanation(self, **kwargs):
        candidate = SimulationResult(
            pred=None, merge=None, benefit=1.0, cost=1.0, probability=1.0
        )
        defaults = dict(
            candidate=candidate,
            weighted=1.0,
            threshold_term=True,
            unit_size_term=True,
            budget_term=True,
        )
        defaults.update(kwargs)
        return CandidateExplanation(**defaults)

    def test_accept(self):
        assert self._explanation().verdict() == "DUPLICATE"

    def test_all_reject_reasons_listed(self):
        text = self._explanation(
            threshold_term=False, unit_size_term=False, budget_term=False
        ).verdict()
        assert "threshold" in text and "max size" in text and "budget" in text


class TestFormatting:
    def test_report_contains_blocks_and_decisions(self):
        program = compile_source(SOURCE)
        graph = program.function("f")
        report = explain_graph(graph, program)
        assert "DBDS candidate report" in report
        assert "DUPLICATE" in report
        assert "skip" in report
        assert "constant-fold" in report

    def test_empty_report(self):
        program = compile_source("fn f(x: int) -> int { return x; }")
        report = explain_graph(program.function("f"), program)
        assert "no predecessor-merge pairs" in report

    def test_cli_explain(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "p.mini"
        path.write_text(SOURCE)
        assert main(["explain", str(path), "--function", "f"]) == 0
        out = capsys.readouterr().out
        assert "DBDS candidate report" in out
