"""The DBDS trade-off tier (Section 5.4).

Implements the paper's ``shouldDuplicate`` heuristic verbatim:

    (b × p × BS) > c  ∧  (cs < MS)  ∧  (cs + c < is × IB)

with the published constants — BenefitScale BS = 256 (derived
empirically by the authors), code-size IncreaseBudget IB = 1.5 (150 %),
and a maximum compilation-unit size MS standing in for HotSpot's
``JVMCINMethodSizeLimit``.  Candidates are ranked by probability-scaled
benefit so the most promising pairs consume the budget first.
"""

from __future__ import annotations

from dataclasses import dataclass

from .simulation import SimulationResult

#: BS — how much more cost than benefit we tolerate (paper: 256).
BENEFIT_SCALE = 256.0
#: IB — max code size growth per compilation unit (paper: 1.5 = 150%).
INCREASE_BUDGET = 1.5
#: MS — absolute compilation-unit size cap (HotSpot install limit
#: stand-in, in cost-model size units).
MAX_UNIT_SIZE = 20_000.0


@dataclass
class TradeOffConfig:
    """Tunable constants of the heuristic (ablation benches sweep them)."""

    benefit_scale: float = BENEFIT_SCALE
    increase_budget: float = INCREASE_BUDGET
    max_unit_size: float = MAX_UNIT_SIZE
    #: when False, probabilities are ignored (ablation A1)
    use_probability: bool = True


def should_duplicate(
    candidate: SimulationResult,
    current_size: float,
    initial_size: float,
    config: TradeOffConfig | None = None,
) -> bool:
    """The paper's shouldDuplicate(bpi, bm, benefit, cost) predicate."""
    cfg = config or TradeOffConfig()
    b = candidate.benefit
    p = candidate.probability if cfg.use_probability else 1.0
    c = candidate.cost
    if not (b * p * cfg.benefit_scale > c):
        return False
    if not (current_size < cfg.max_unit_size):
        return False
    if not (current_size + c < initial_size * cfg.increase_budget):
        return False
    return True


def sort_candidates(
    candidates: list[SimulationResult], config: TradeOffConfig | None = None
) -> list[SimulationResult]:
    """Rank by probability-weighted benefit (desc), then by cost (asc).

    "We sort duplication candidates based on these values and optimize
    the most likely and most beneficial ones first" — important when the
    code-size budget runs out before all candidates are performed.
    """
    cfg = config or TradeOffConfig()

    def key(c: SimulationResult) -> tuple[float, float]:
        weighted = c.benefit * (c.probability if cfg.use_probability else 1.0)
        return (-weighted, c.cost)

    return sorted(candidates, key=key)
