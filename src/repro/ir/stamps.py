"""Stamps: per-value static type/range facts, in the style of Graal.

A *stamp* describes everything the compiler statically knows about the
value an instruction produces.  Stamps drive canonicalization (a compare
whose operand ranges do not overlap folds to a constant) and conditional
elimination (a dominating ``x > 0`` narrows the stamp of ``x`` inside the
true branch).

Stamps form a lattice per kind; :func:`meet` is the merge (union of
possibilities, used at CFG merges) and :meth:`join` the intersection
(used when a dominating condition adds information).  An empty stamp
means the code is unreachable under the current assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from .types import BOOL, INT, ArrayType, NullType, ObjectType, Type, VoidType

INT_MIN = -(2**63)
INT_MAX = 2**63 - 1


class Stamp:
    """Base class for all stamps."""

    def is_empty(self) -> bool:
        """True when no runtime value satisfies this stamp (dead code)."""
        return False

    def as_constant(self):
        """Return ``(value,)`` when the stamp pins a single value, else None.

        Wrapped in a 1-tuple so a constant ``None``/``False`` is
        distinguishable from "not constant".
        """
        return None


@dataclass(frozen=True)
class IntStamp(Stamp):
    """A signed 64-bit integer in the inclusive range [lo, hi]."""

    lo: int = INT_MIN
    hi: int = INT_MAX

    def is_empty(self) -> bool:
        return self.lo > self.hi

    def as_constant(self):
        if self.lo == self.hi:
            return (self.lo,)
        return None

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def join(self, other: "IntStamp") -> "IntStamp":
        """Intersection: both facts hold."""
        return IntStamp(max(self.lo, other.lo), min(self.hi, other.hi))

    def meet(self, other: "IntStamp") -> "IntStamp":
        """Union: either fact may hold (CFG merge)."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return IntStamp(min(self.lo, other.lo), max(self.hi, other.hi))

    def __repr__(self) -> str:
        if self.is_empty():
            return "i64<empty>"
        if self.lo == INT_MIN and self.hi == INT_MAX:
            return "i64"
        if self.lo == self.hi:
            return f"i64[{self.lo}]"
        lo = "min" if self.lo == INT_MIN else str(self.lo)
        hi = "max" if self.hi == INT_MAX else str(self.hi)
        return f"i64[{lo}..{hi}]"


@dataclass(frozen=True)
class BoolStamp(Stamp):
    """A boolean which may be true, false, or either."""

    can_be_true: bool = True
    can_be_false: bool = True

    def is_empty(self) -> bool:
        return not (self.can_be_true or self.can_be_false)

    def as_constant(self):
        if self.can_be_true and not self.can_be_false:
            return (True,)
        if self.can_be_false and not self.can_be_true:
            return (False,)
        return None

    def join(self, other: "BoolStamp") -> "BoolStamp":
        return BoolStamp(
            self.can_be_true and other.can_be_true,
            self.can_be_false and other.can_be_false,
        )

    def meet(self, other: "BoolStamp") -> "BoolStamp":
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return BoolStamp(
            self.can_be_true or other.can_be_true,
            self.can_be_false or other.can_be_false,
        )

    def __repr__(self) -> str:
        if self.is_empty():
            return "bool<empty>"
        c = self.as_constant()
        if c is not None:
            return f"bool[{c[0]}]"
        return "bool"


@dataclass(frozen=True)
class ObjectStamp(Stamp):
    """A reference value: its static type plus nullness information."""

    type: Type
    non_null: bool = False
    always_null: bool = False

    def is_empty(self) -> bool:
        return self.non_null and self.always_null

    def as_constant(self):
        if self.always_null and not self.non_null:
            return (None,)
        return None

    def join(self, other: "ObjectStamp") -> "ObjectStamp":
        return ObjectStamp(
            self.type if not isinstance(self.type, NullType) else other.type,
            self.non_null or other.non_null,
            self.always_null or other.always_null,
        )

    def meet(self, other: "ObjectStamp") -> "ObjectStamp":
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        ty = self.type
        if isinstance(ty, NullType) or ty != other.type:
            ty = other.type if not isinstance(other.type, NullType) else ty
        return ObjectStamp(
            ty,
            self.non_null and other.non_null,
            self.always_null and other.always_null,
        )

    def __repr__(self) -> str:
        suffix = ""
        if self.always_null:
            suffix = "[null]"
        elif self.non_null:
            suffix = "!"
        return f"ref({self.type!r}){suffix}"


@dataclass(frozen=True)
class VoidStamp(Stamp):
    """Stamp of instructions that produce no value (stores, returns)."""

    def __repr__(self) -> str:
        return "void"


VOID_STAMP = VoidStamp()
TRUE_STAMP = BoolStamp(can_be_true=True, can_be_false=False)
FALSE_STAMP = BoolStamp(can_be_true=False, can_be_false=True)
ANY_BOOL = BoolStamp()
ANY_INT = IntStamp()


def stamp_for_type(ty: Type) -> Stamp:
    """The least informative stamp for a value of static type ``ty``."""
    if ty == INT:
        return ANY_INT
    if ty == BOOL:
        return ANY_BOOL
    if isinstance(ty, (ObjectType, ArrayType)):
        return ObjectStamp(ty)
    if isinstance(ty, NullType):
        return ObjectStamp(ty, always_null=True)
    if isinstance(ty, VoidType):
        return VOID_STAMP
    raise TypeError(f"no stamp for type {ty!r}")


def stamp_for_constant(value, ty: Type) -> Stamp:
    """The exact stamp of a literal constant."""
    if ty == INT:
        return IntStamp(value, value)
    if ty == BOOL:
        return TRUE_STAMP if value else FALSE_STAMP
    if value is None:
        return ObjectStamp(ty, always_null=True)
    raise TypeError(f"unsupported constant {value!r}: {ty!r}")


def meet(a: Stamp, b: Stamp) -> Stamp:
    """Merge stamps of the same kind flowing together at a phi."""
    if isinstance(a, IntStamp) and isinstance(b, IntStamp):
        return a.meet(b)
    if isinstance(a, BoolStamp) and isinstance(b, BoolStamp):
        return a.meet(b)
    if isinstance(a, ObjectStamp) and isinstance(b, ObjectStamp):
        return a.meet(b)
    if isinstance(a, VoidStamp) and isinstance(b, VoidStamp):
        return VOID_STAMP
    raise TypeError(f"cannot meet stamps {a!r} and {b!r}")


def join(a: Stamp, b: Stamp) -> Stamp:
    """Intersect stamps: the value satisfies both facts."""
    if isinstance(a, IntStamp) and isinstance(b, IntStamp):
        return a.join(b)
    if isinstance(a, BoolStamp) and isinstance(b, BoolStamp):
        return a.join(b)
    if isinstance(a, ObjectStamp) and isinstance(b, ObjectStamp):
        return a.join(b)
    if isinstance(a, VoidStamp) and isinstance(b, VoidStamp):
        return VOID_STAMP
    raise TypeError(f"cannot join stamps {a!r} and {b!r}")
