"""Process-wide runtime metrics: counters, gauges and histograms.

Where the :class:`~repro.obs.tracer.Tracer` answers "what happened
during *this one compilation*" (spans, events), the
:class:`MetricsRegistry` answers "what has this *process* been doing"
— live, labeled, aggregatable state suitable for a scraping daemon or
a post-run snapshot.  Three instrument kinds:

* **counters** — monotonically increasing totals
  (``repro_cache_lookups_total{result="hit"}``);
* **gauges** — last-set point-in-time values
  (``repro_batch_queue_depth``); merges take the maximum, so a folded
  batch snapshot reports the *peak* queue depth;
* **histograms** — fixed-exponential-bucket distributions
  (``repro_compile_phase_seconds{phase="dbds"}``).  Bucket layouts are
  declared once in :data:`HISTOGRAM_BUCKETS` keyed by metric name, so
  every process observing a metric uses the same layout and snapshots
  merge bucket-by-bucket.

Snapshot/merge semantics mirror how per-worker traces fold into one
:class:`~repro.obs.profile.CompileProfile`: each ``repro batch -j N``
worker runs under its own registry, snapshots it, and the parent folds
the snapshots into its own registry — serial and parallel batches
produce identical merged totals (``tests/test_pipeline/
test_metrics_differential.py`` enforces this).

Two exporters: :meth:`MetricsSnapshot.to_json` (the ``--metrics-out``
payload) and :meth:`MetricsSnapshot.render_prometheus` (text
exposition, ready for a future ``repro serve`` daemon to expose on
``/metrics``).

Overhead discipline matches the tracer: the ambient default is
:data:`NULL_REGISTRY`, whose every operation is a no-op, and hot
instrumentation sites check ``registry.enabled`` before taking
timestamps.  Install a live registry with :func:`use_registry`.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional

#: bump when the snapshot JSON layout changes
METRICS_SCHEMA_VERSION = 1


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` bucket upper bounds growing geometrically from ``start``."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**i for i in range(count))


#: wall-time layout: 10 µs .. ~21 s in ×2 steps
SECONDS_BUCKETS = exponential_buckets(1e-5, 2.0, 22)
#: payload-size layout: 256 B .. ~1 GB in ×4 steps
BYTES_BUCKETS = exponential_buckets(256.0, 4.0, 12)

#: the declared bucket layout of every known histogram; undeclared
#: names fall back to SECONDS_BUCKETS.  Central so that parent and
#: worker processes can never disagree (merging asserts equal layouts).
HISTOGRAM_BUCKETS: dict[str, tuple[float, ...]] = {
    "repro_compile_phase_seconds": SECONDS_BUCKETS,
    "repro_compile_unit_seconds": SECONDS_BUCKETS,
    "repro_batch_job_seconds": SECONDS_BUCKETS,
    "repro_cache_entry_bytes": BYTES_BUCKETS,
    "repro_bcverify_seconds": SECONDS_BUCKETS,
    "repro_tier_compile_seconds": SECONDS_BUCKETS,
}

#: HELP strings for the Prometheus exposition
METRIC_HELP: dict[str, str] = {
    "repro_cache_lookups_total": "Artifact-cache lookups by result (hit/miss).",
    "repro_cache_stores_total": "Artifact-cache entries written.",
    "repro_cache_evictions_total": "Corrupted artifact-cache entries evicted.",
    "repro_cache_entry_bytes": "Artifact-cache entry payload sizes.",
    "repro_batch_queue_depth": "Batch jobs still queued (gauge; merge = peak).",
    "repro_batch_jobs_total": "Batch jobs by outcome (cached/compiled/error).",
    "repro_batch_job_seconds": "Per-job batch compile latency.",
    "repro_compile_units_total": "Compilation units optimized.",
    "repro_compile_unit_seconds": "Wall time per compilation unit.",
    "repro_compile_phase_seconds": "Wall time per optimization-phase run.",
    "repro_dbds_candidates_total": "DBDS duplication candidates simulated.",
    "repro_dbds_decisions_total": "DBDS trade-off decisions by outcome.",
    "repro_dbds_duplications_total": "Duplications performed by the DBDS tier.",
    "repro_dbds_backtrack_total": "Backtracking-baseline attempts by outcome.",
    "repro_analysis_violations_total": "IR sanitizer findings by severity.",
    "repro_vm_runs_total": "Measured program executions by engine.",
    "repro_bcverify_runs_total": "Bytecode verifier runs by result (ok/fail).",
    "repro_bcverify_seconds": "Wall time per bytecode verifier run.",
    "repro_bcverify_rejected_artifacts_total":
        "Cache artifacts rejected by the bytecode verifier at load.",
    "repro_tier_promotions_total":
        "Functions promoted to the optimized tier, by function/trigger.",
    "repro_tier_compile_seconds": "Wall time per tier-up recompilation.",
    "repro_tier_plan_cache_total":
        "Tier-up plan cache lookups by result (hit/miss).",
}

#: label-set key used inside snapshots: "" or "k=v,k2=v2" (sorted)
LabelKey = str


def label_key(labels: dict[str, Any]) -> LabelKey:
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


def parse_label_key(key: LabelKey) -> dict[str, str]:
    if not key:
        return {}
    return dict(part.split("=", 1) for part in key.split(","))


# ----------------------------------------------------------------------
# Histogram state
# ----------------------------------------------------------------------
@dataclass
class HistogramData:
    """One labeled histogram series: cumulative-free bucket counts.

    ``counts`` has ``len(buckets) + 1`` slots — the final slot is the
    overflow (``+Inf``) bucket.  The Prometheus renderer emits the
    conventional cumulative ``_bucket{le=...}`` form.
    """

    buckets: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "HistogramData") -> None:
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different bucket layouts "
                f"({len(self.buckets)} vs {len(other.buckets)} buckets)"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.sum += other.sum
        self.count += other.count

    def to_json(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "HistogramData":
        return cls(
            buckets=tuple(data["buckets"]),
            counts=list(data["counts"]),
            sum=data["sum"],
            count=data["count"],
        )


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
@dataclass
class MetricsSnapshot:
    """A frozen, mergeable, serializable copy of one registry's state."""

    counters: dict[str, dict[LabelKey, float]] = field(default_factory=dict)
    gauges: dict[str, dict[LabelKey, float]] = field(default_factory=dict)
    histograms: dict[str, dict[LabelKey, HistogramData]] = field(default_factory=dict)

    # -- reads ----------------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> float:
        return self.counters.get(name, {}).get(label_key(labels), 0)

    def counter_total(self, name: str) -> float:
        return sum(self.counters.get(name, {}).values())

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        return self.gauges.get(name, {}).get(label_key(labels))

    def histogram(self, name: str, **labels: Any) -> Optional[HistogramData]:
        return self.histograms.get(name, {}).get(label_key(labels))

    def histogram_count(self, name: str, **labels: Any) -> int:
        data = self.histogram(name, **labels)
        return data.count if data is not None else 0

    def histogram_counts(self, name: str) -> dict[LabelKey, int]:
        """Observation counts per label set (wall-clock independent)."""
        return {
            key: data.count
            for key, data in self.histograms.get(name, {}).items()
        }

    # -- merge ----------------------------------------------------------
    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold ``other`` into self (counters add, gauges take the max,
        histogram buckets add elementwise); returns self."""
        for name, series in other.counters.items():
            mine = self.counters.setdefault(name, {})
            for key, value in series.items():
                mine[key] = mine.get(key, 0) + value
        for name, series in other.gauges.items():
            mine = self.gauges.setdefault(name, {})
            for key, value in series.items():
                mine[key] = max(mine[key], value) if key in mine else value
        for name, series in other.histograms.items():
            mine_h = self.histograms.setdefault(name, {})
            for key, data in series.items():
                if key in mine_h:
                    mine_h[key].merge(data)
                else:
                    mine_h[key] = HistogramData(
                        buckets=data.buckets,
                        counts=list(data.counts),
                        sum=data.sum,
                        count=data.count,
                    )
        return self

    # -- serialization --------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": {n: dict(s) for n, s in sorted(self.counters.items())},
            "gauges": {n: dict(s) for n, s in sorted(self.gauges.items())},
            "histograms": {
                n: {k: d.to_json() for k, d in s.items()}
                for n, s in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "MetricsSnapshot":
        return cls(
            counters={n: dict(s) for n, s in data.get("counters", {}).items()},
            gauges={n: dict(s) for n, s in data.get("gauges", {}).items()},
            histograms={
                n: {k: HistogramData.from_json(d) for k, d in s.items()}
                for n, s in data.get("histograms", {}).items()
            },
        )

    # -- Prometheus text exposition -------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []

        def header(name: str, kind: str) -> None:
            help_text = METRIC_HELP.get(name, name.replace("_", " "))
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        def fmt_labels(key: LabelKey, extra: str = "") -> str:
            parts = [
                f'{k}="{v}"' for k, v in sorted(parse_label_key(key).items())
            ]
            if extra:
                parts.append(extra)
            return "{" + ",".join(parts) + "}" if parts else ""

        def fmt_value(value: float) -> str:
            return repr(value) if isinstance(value, float) else str(value)

        for name in sorted(self.counters):
            header(name, "counter")
            for key in sorted(self.counters[name]):
                lines.append(
                    f"{name}{fmt_labels(key)} "
                    f"{fmt_value(self.counters[name][key])}"
                )
        for name in sorted(self.gauges):
            header(name, "gauge")
            for key in sorted(self.gauges[name]):
                lines.append(
                    f"{name}{fmt_labels(key)} "
                    f"{fmt_value(self.gauges[name][key])}"
                )
        for name in sorted(self.histograms):
            header(name, "histogram")
            for key in sorted(self.histograms[name]):
                data = self.histograms[name][key]
                cumulative = 0
                for bound, count in zip(data.buckets, data.counts):
                    cumulative += count
                    le = 'le="' + fmt_value(bound) + '"'
                    lines.append(
                        f"{name}_bucket{fmt_labels(key, le)} {cumulative}"
                    )
                inf = 'le="+Inf"'
                lines.append(
                    f"{name}_bucket{fmt_labels(key, inf)} {data.count}"
                )
                lines.append(
                    f"{name}_sum{fmt_labels(key)} {fmt_value(data.sum)}"
                )
                lines.append(f"{name}_count{fmt_labels(key)} {data.count}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """Live metric state for one process (or one pool worker).

    All mutation goes through three flat calls — :meth:`inc`,
    :meth:`set_gauge`, :meth:`observe` — so the no-op
    :class:`NullMetricsRegistry` can shadow the whole surface.  Label
    values are stringified into the series key; keep cardinality low
    (phase names, result kinds — never per-program identifiers).
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, dict[LabelKey, float]] = {}
        self._gauges: dict[str, dict[LabelKey, float]] = {}
        self._histograms: dict[str, dict[LabelKey, HistogramData]] = {}

    # -- mutation -------------------------------------------------------
    def inc(self, name: str, n: float = 1, **labels: Any) -> None:
        series = self._counters.setdefault(name, {})
        key = label_key(labels)
        series[key] = series.get(key, 0) + n

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self._gauges.setdefault(name, {})[label_key(labels)] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        series = self._histograms.setdefault(name, {})
        key = label_key(labels)
        data = series.get(key)
        if data is None:
            data = series[key] = HistogramData(
                buckets=HISTOGRAM_BUCKETS.get(name, SECONDS_BUCKETS)
            )
        data.observe(value)

    # -- snapshot / merge -----------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters={n: dict(s) for n, s in self._counters.items()},
            gauges={n: dict(s) for n, s in self._gauges.items()},
            histograms={
                n: {
                    k: HistogramData(
                        buckets=d.buckets,
                        counts=list(d.counts),
                        sum=d.sum,
                        count=d.count,
                    )
                    for k, d in s.items()
                }
                for n, s in self._histograms.items()
            },
        )

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a (worker) snapshot into this live registry."""
        merged = self.snapshot().merge(snapshot)
        self._counters = merged.counters
        self._gauges = merged.gauges
        self._histograms = merged.histograms


class NullMetricsRegistry(MetricsRegistry):
    """The ambient default: every operation is a no-op.

    Like :class:`~repro.obs.tracer.NullTracer`, a process-wide
    singleton must not accrue state across unrelated work.
    """

    enabled = False

    def inc(self, name: str, n: float = 1, **labels: Any) -> None:
        return None

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        return None

    def observe(self, name: str, value: float, **labels: Any) -> None:
        return None


NULL_REGISTRY = NullMetricsRegistry()

# ----------------------------------------------------------------------
# Ambient registry, mirroring the ambient tracer: instrumentation sites
# read it instead of threading a registry through every constructor.
# ----------------------------------------------------------------------
_current: MetricsRegistry = NULL_REGISTRY


def current_registry() -> MetricsRegistry:
    """The registry instrumentation sites should emit to."""
    return _current


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the ambient registry for the duration."""
    global _current
    previous = _current
    _current = registry
    try:
        yield registry
    finally:
        _current = previous


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold many snapshots into one fresh snapshot."""
    merged = MetricsSnapshot()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged
