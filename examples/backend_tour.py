"""A tour of the back end: from optimized IR to 'machine code'.

Shows the lower half of the paper's Section 5.1 pipeline on a small
function: lowering to LIR (phis become parallel moves), liveness
intervals, linear-scan register allocation under pressure, execution on
the register machine, and the emitted-bytes code size the paper's
evaluation measures.

Run:  python examples/backend_tour.py
"""

from repro import DBDS, compile_and_profile
from repro.backend import (
    Machine,
    allocate,
    compute_intervals,
    function_bytes,
    lower_program,
    program_bytes,
)

SOURCE = """
fn fib(n: int) -> int {
  var a: int = 0;
  var b: int = 1;
  var i: int = 0;
  while (i < n) {
    var t: int = a + b;
    a = b;
    b = t;
    i = i + 1;
  }
  return a;
}
fn main(n: int) -> int { return fib(n); }
"""


def main() -> None:
    program, _ = compile_and_profile(SOURCE, "main", [[15]], DBDS)

    print("=== LIR before register allocation ===")
    lir = lower_program(program)
    fib = lir.function("fib")
    print(fib.describe())
    print()

    print("=== live intervals ===")
    for interval in compute_intervals(fib):
        print(f"  {interval!r}")
    print()

    print("=== after linear scan with 3 registers ===")
    result = allocate(fib, register_count=3)
    print(f"spills: {result.spills}, frame slots: {fib.frame_slots}")
    print(fib.describe())
    print()

    # Allocate the rest of the program and run it on the machine.
    for name, fn in lir.functions.items():
        if name != "fib":
            allocate(fn, register_count=3)
    machine = Machine(lir)
    print("fib(15) on the register machine:", machine.run("main", [15]).value)
    print(f"fib emitted bytes: {function_bytes(fib)}")
    print(f"whole program    : {program_bytes(lir)} bytes")


if __name__ == "__main__":
    main()
