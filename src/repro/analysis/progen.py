"""Random MiniLang program generator for differential testing.

Generates syntactically valid, always-terminating programs that mix all
language features (ints, bools, objects, arrays, globals, calls,
branches, bounded loops) and may trap (division by zero, null
dereference, out-of-bounds) — traps are part of the observable outcome
the configurations must agree on.
"""

from __future__ import annotations

import random


class ProgramGenerator:
    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.fresh = 0

    def name(self, prefix: str) -> str:
        self.fresh += 1
        return f"{prefix}{self.fresh}"

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def int_expr(self, vars_: list[str], depth: int) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            if vars_ and rng.random() < 0.7:
                return rng.choice(vars_)
            return str(rng.randint(-20, 100))
        kind = rng.random()
        if kind < 0.75:
            op = rng.choice(["+", "-", "*", "&", "|", "^"])
            return (
                f"({self.int_expr(vars_, depth - 1)} {op} "
                f"{self.int_expr(vars_, depth - 1)})"
            )
        if kind < 0.85:
            # Division/modulo: may trap, which is intentional.
            op = rng.choice(["/", "%"])
            return (
                f"({self.int_expr(vars_, depth - 1)} {op} "
                f"{self.int_expr(vars_, depth - 1)})"
            )
        op = rng.choice(["<<", ">>"])
        return f"({self.int_expr(vars_, depth - 1)} {op} {self.rng.randint(0, 5)})"

    def bool_expr(self, vars_: list[str], depth: int) -> str:
        rng = self.rng
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        left = self.int_expr(vars_, depth - 1)
        right = self.int_expr(vars_, depth - 1)
        base = f"({left} {op} {right})"
        if depth > 1 and rng.random() < 0.3:
            joiner = rng.choice(["&&", "||"])
            other = self.bool_expr(vars_, depth - 1)
            return f"({base} {joiner} {other})"
        if rng.random() < 0.15:
            return f"(!{base})"
        return base

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def statements(self, vars_: list[str], depth: int, budget: int) -> list[str]:
        rng = self.rng
        out: list[str] = []
        count = rng.randint(1, max(1, budget))
        for _ in range(count):
            kind = rng.random()
            if kind < 0.3 or not vars_:
                var = self.name("v")
                out.append(f"var {var}: int = {self.int_expr(vars_, 2)};")
                vars_.append(var)
            elif kind < 0.55:
                # Induction variables (i-prefixed) are reserved: loops
                # must terminate.
                writable = [v for v in vars_ if not v.startswith("i")]
                if not writable:
                    continue
                target = rng.choice(writable)
                out.append(f"{target} = {self.int_expr(vars_, 2)};")
            elif kind < 0.8 and depth > 0:
                cond = self.bool_expr(vars_, 2)
                then_body = self.indent(
                    self.statements(list(vars_), depth - 1, budget - 1)
                )
                if rng.random() < 0.6:
                    else_body = self.indent(
                        self.statements(list(vars_), depth - 1, budget - 1)
                    )
                    out.append(
                        f"if ({cond}) {{\n{then_body}\n}} else {{\n{else_body}\n}}"
                    )
                else:
                    out.append(f"if ({cond}) {{\n{then_body}\n}}")
            elif kind < 0.9 and depth > 0:
                # Canonical bounded loop; the induction variable is
                # reserved (never reassigned by the body).
                i = self.name("i")
                bound = rng.randint(1, 6)
                body_vars = list(vars_) + [i]
                body = self.indent(self.statements(body_vars, depth - 1, budget - 1))
                out.append(
                    f"var {i}: int = 0;\n"
                    f"while ({i} < {bound}) {{\n{body}\n  {i} = {i} + 1;\n}}"
                )
            else:
                out.append(f"g = g + {rng.choice(vars_)};")
        return out

    @staticmethod
    def indent(statements: list[str]) -> str:
        lines = []
        for stmt in statements:
            for line in stmt.split("\n"):
                lines.append("  " + line)
        return "\n".join(lines) if lines else "  g = g + 0;"

    # ------------------------------------------------------------------
    def helper(self, index: int) -> str:
        vars_ = ["x", "y"]
        # Object/array flavour in some helpers (chosen before the body
        # is generated so declared variables match the emitted code).
        flavour = self.rng.random()
        prologue = ""
        if flavour < 0.35:
            prologue = (
                f"  var box: D = new D {{ a = x, b = {self.rng.randint(0, 9)} }};\n"
                f"  var bv: int = box.a + box.b;\n"
            )
            vars_.append("bv")
            body = self.statements(vars_, depth=1, budget=3)
        elif flavour < 0.55:
            size = self.rng.randint(1, 5)
            prologue = (
                f"  var arr: int[] = new int[{size}];\n"
                f"  arr[{self.rng.randint(0, size - 1)}] = x;\n"
                f"  var av: int = arr[{self.rng.randint(0, size)}];\n"
            )
            vars_.append("av")
            body = self.statements(vars_, depth=1, budget=3)
        else:
            body = self.statements(vars_, depth=2, budget=4)
        stmts = "\n".join("  " + line for s in body for line in s.split("\n"))
        ret = self.int_expr(vars_, 2)
        return (
            f"fn h{index}(x: int, y: int) -> int {{\n"
            f"{prologue}{stmts}\n  return {ret};\n}}\n"
        )

    def generate(self) -> str:
        helper_count = self.rng.randint(1, 3)
        helpers = "".join(self.helper(i) for i in range(helper_count))
        calls = " + ".join(
            f"h{i}(k, acc)" for i in range(helper_count)
        )
        return (
            "class D { a: int; b: int; }\n"
            "global g: int;\n"
            f"{helpers}"
            "fn main(n: int) -> int {\n"
            "  var acc: int = 0;\n"
            "  var k: int = 0;\n"
            "  while (k < n) {\n"
            f"    acc = acc + {calls};\n"
            "    k = k + 1;\n"
            "  }\n"
            "  return acc + g;\n"
            "}\n"
        )


def random_program(seed: int) -> str:
    """A deterministic random program for the given seed."""
    return ProgramGenerator(seed).generate()
