"""Tests for operator semantics: Java-like 64-bit arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.ops import (
    BinOp,
    CmpOp,
    EvaluationTrap,
    eval_binop,
    eval_cmp,
    wrap64,
)

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1
i64 = st.integers(min_value=INT64_MIN, max_value=INT64_MAX)
nonzero_i64 = i64.filter(lambda v: v != 0)


class TestWrap64:
    def test_in_range_unchanged(self):
        assert wrap64(0) == 0
        assert wrap64(INT64_MAX) == INT64_MAX
        assert wrap64(INT64_MIN) == INT64_MIN

    def test_overflow_wraps(self):
        assert wrap64(INT64_MAX + 1) == INT64_MIN
        assert wrap64(INT64_MIN - 1) == INT64_MAX
        assert wrap64(2**64) == 0

    @given(i64)
    def test_idempotent(self, v):
        assert wrap64(wrap64(v)) == wrap64(v)

    @given(st.integers())
    def test_always_in_range(self, v):
        assert INT64_MIN <= wrap64(v) <= INT64_MAX


class TestArithmetic:
    @given(i64, i64)
    def test_add_matches_wrapping(self, a, b):
        assert eval_binop(BinOp.ADD, a, b) == wrap64(a + b)

    @given(i64, i64)
    def test_sub_mul(self, a, b):
        assert eval_binop(BinOp.SUB, a, b) == wrap64(a - b)
        assert eval_binop(BinOp.MUL, a, b) == wrap64(a * b)

    def test_div_truncates_toward_zero(self):
        assert eval_binop(BinOp.DIV, 7, 2) == 3
        assert eval_binop(BinOp.DIV, -7, 2) == -3
        assert eval_binop(BinOp.DIV, 7, -2) == -3
        assert eval_binop(BinOp.DIV, -7, -2) == 3

    def test_mod_sign_follows_dividend(self):
        assert eval_binop(BinOp.MOD, 7, 3) == 1
        assert eval_binop(BinOp.MOD, -7, 3) == -1
        assert eval_binop(BinOp.MOD, 7, -3) == 1
        assert eval_binop(BinOp.MOD, -7, -3) == -1

    @given(i64, nonzero_i64)
    def test_div_mod_identity(self, a, b):
        q = eval_binop(BinOp.DIV, a, b)
        r = eval_binop(BinOp.MOD, a, b)
        assert wrap64(q * b + r) == a

    def test_division_by_zero_traps(self):
        with pytest.raises(EvaluationTrap):
            eval_binop(BinOp.DIV, 1, 0)
        with pytest.raises(EvaluationTrap):
            eval_binop(BinOp.MOD, 1, 0)

    def test_div_overflow_wraps(self):
        # INT64_MIN / -1 overflows in two's complement.
        assert eval_binop(BinOp.DIV, INT64_MIN, -1) == INT64_MIN

    def test_bitwise(self):
        assert eval_binop(BinOp.AND, 0b1100, 0b1010) == 0b1000
        assert eval_binop(BinOp.OR, 0b1100, 0b1010) == 0b1110
        assert eval_binop(BinOp.XOR, 0b1100, 0b1010) == 0b0110

    def test_shifts_mask_count(self):
        # Java masks shift counts to 6 bits for longs.
        assert eval_binop(BinOp.SHL, 1, 64) == 1
        assert eval_binop(BinOp.SHL, 1, 65) == 2
        assert eval_binop(BinOp.SHR, -8, 1) == -4
        assert eval_binop(BinOp.USHR, -1, 1) == INT64_MAX

    @given(i64, st.integers(min_value=0, max_value=63))
    def test_shr_matches_floor_division_by_power(self, a, k):
        assert eval_binop(BinOp.SHR, a, k) == a >> k

    def test_commutativity_flags(self):
        assert BinOp.ADD.commutative and BinOp.MUL.commutative
        assert BinOp.XOR.commutative and BinOp.AND.commutative
        assert not BinOp.SUB.commutative and not BinOp.SHL.commutative

    def test_trap_flags(self):
        assert BinOp.DIV.can_trap and BinOp.MOD.can_trap
        assert not BinOp.ADD.can_trap


class TestComparisons:
    @given(i64, i64)
    def test_int_comparisons(self, a, b):
        assert eval_cmp(CmpOp.EQ, a, b) == (a == b)
        assert eval_cmp(CmpOp.NE, a, b) == (a != b)
        assert eval_cmp(CmpOp.LT, a, b) == (a < b)
        assert eval_cmp(CmpOp.LE, a, b) == (a <= b)
        assert eval_cmp(CmpOp.GT, a, b) == (a > b)
        assert eval_cmp(CmpOp.GE, a, b) == (a >= b)

    def test_reference_identity(self):
        class Obj:
            pass

        a, b = Obj(), Obj()
        assert eval_cmp(CmpOp.EQ, a, a)
        assert not eval_cmp(CmpOp.EQ, a, b)
        assert eval_cmp(CmpOp.NE, a, b)

    def test_null_comparisons(self):
        assert eval_cmp(CmpOp.EQ, None, None)
        class Obj:
            pass
        assert not eval_cmp(CmpOp.EQ, Obj(), None)

    @given(st.sampled_from(list(CmpOp)), i64, i64)
    def test_negate_is_logical_not(self, op, a, b):
        assert eval_cmp(op.negate(), a, b) == (not eval_cmp(op, a, b))

    @given(st.sampled_from(list(CmpOp)), i64, i64)
    def test_swap_exchanges_operands(self, op, a, b):
        assert eval_cmp(op.swap(), b, a) == eval_cmp(op, a, b)
