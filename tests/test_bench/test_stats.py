"""Tests for harness statistics helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.bench.stats import (
    format_percent,
    geometric_mean,
    percent_change,
    speedup_percent,
)


class TestGeometricMean:
    def test_single_value(self):
        assert geometric_mean([4.0]) == pytest.approx(4.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([-1.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=10))
    def test_scale_invariance(self, values):
        gm = geometric_mean(values)
        scaled = geometric_mean([v * 2.0 for v in values])
        assert scaled == pytest.approx(gm * 2.0, rel=1e-9)


class TestPercentHelpers:
    def test_percent_change(self):
        assert percent_change(1.05) == pytest.approx(5.0)
        assert percent_change(0.9) == pytest.approx(-10.0)

    def test_speedup_percent(self):
        assert speedup_percent(200.0, 100.0) == pytest.approx(100.0)
        assert speedup_percent(100.0, 100.0) == pytest.approx(0.0)
        assert speedup_percent(100.0, 0.0) == 0.0

    def test_format(self):
        assert format_percent(5.891) == "+5.89%"
        assert format_percent(-0.14) == "-0.14%"
