"""Tests for profile collection and application."""

import pytest

from repro.frontend.irbuilder import compile_source
from repro.interp.interpreter import Interpreter, ProfileCollector
from repro.interp.profile import apply_profile, profile_program
from repro.ir.loops import DEFAULT_TRIP_COUNT, LoopForest
from repro.ir.nodes import If


SRC = """
fn branchy(x: int) -> int {
  if (x > 10) { return 1; }
  return 0;
}

fn loopy(n: int) -> int {
  var i: int = 0;
  while (i < n) { i = i + 1; }
  return i;
}

fn main(k: int) -> int {
  var t: int = 0;
  var i: int = 0;
  while (i < k) { t = t + branchy(i) + loopy(7); i = i + 1; }
  return t;
}
"""


def branch_of(graph) -> If:
    branches = [
        b.terminator for b in graph.blocks if isinstance(b.terminator, If)
    ]
    assert len(branches) == 1
    return branches[0]


class TestCollection:
    def test_branch_counts(self):
        program = compile_source(SRC)
        collector = profile_program(program, "main", [[20]])
        branch = branch_of(program.function("branchy"))
        counts = collector.branch_counts[branch]
        # x in 0..19: x > 10 for 11..19 (9 times), else 11 times.
        assert counts == [9, 11]

    def test_true_probability(self):
        program = compile_source(SRC)
        collector = profile_program(program, "main", [[20]])
        branch = branch_of(program.function("branchy"))
        assert collector.true_probability(branch) == pytest.approx(9 / 20)

    def test_unexecuted_branch_has_no_profile(self):
        program = compile_source(SRC)
        collector = ProfileCollector()
        branch = branch_of(program.function("branchy"))
        assert collector.true_probability(branch) is None

    def test_block_counts(self):
        program = compile_source(SRC)
        collector = profile_program(program, "main", [[5]])
        entry = program.function("branchy").entry
        assert collector.block_counts[entry] == 5


class TestApplication:
    def test_probabilities_written_to_if(self):
        program = compile_source(SRC)
        collector = profile_program(program, "main", [[20]])
        apply_profile(program, collector)
        branch = branch_of(program.function("branchy"))
        assert branch.true_probability == pytest.approx(9 / 20)

    def test_probabilities_clamped(self):
        program = compile_source(
            "fn f(x: int) -> int { if (x > 1000000) { return 1; } return 0; }\n"
            "fn main(k: int) -> int { var i: int = 0; var t: int = 0;"
            " while (i < k) { t = t + f(i); i = i + 1; } return t; }"
        )
        collector = profile_program(program, "main", [[50]])
        apply_profile(program, collector)
        branch = branch_of(program.function("f"))
        assert branch.true_probability == pytest.approx(0.01)

    def test_loop_trip_count_recorded(self):
        program = compile_source(SRC)
        collector = profile_program(program, "main", [[10]])
        apply_profile(program, collector)
        graph = program.function("loopy")
        forest = LoopForest(graph)
        # loopy(7): the header runs 8 times per entry.
        assert forest.loops[0].trip_count == pytest.approx(8.0)

    def test_unprofiled_loop_keeps_default(self):
        program = compile_source(SRC)
        apply_profile(program, ProfileCollector())
        forest = LoopForest(program.function("loopy"))
        assert forest.loops[0].trip_count == DEFAULT_TRIP_COUNT

    def test_profile_survives_copy(self):
        from repro.ir.copy import copy_graph

        program = compile_source(SRC)
        collector = profile_program(program, "main", [[20]])
        apply_profile(program, collector)
        graph = program.function("branchy")
        copied, _ = copy_graph(graph)
        assert branch_of(copied).true_probability == pytest.approx(9 / 20)
