"""LIR checker tests: clean lowered code plus one corruption each."""

from __future__ import annotations

from repro.analysis import run_lir_checkers
from repro.backend.lir import LirMove, PReg, StackSlot, fresh_vreg
from repro.backend.liveness import LiveInterval
from repro.backend.lowering import lower_program
from repro.backend.regalloc import AllocationResult, allocate
from repro.frontend.irbuilder import compile_source

SOURCE = """
fn main(n: int) -> int {
  var s: int = 0;
  var i: int = 0;
  while (i < n) {
    if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
    i = i + 1;
  }
  return s;
}
"""


def lowered():
    return lower_program(compile_source(SOURCE)).function("main")


def erroring_checkers(function, allocation=None):
    report = run_lir_checkers(function, allocation)
    return {v.checker for v in report.errors()}, report


def test_clean_function_passes_before_and_after_allocation():
    function = lowered()
    assert run_lir_checkers(function).ok
    result = allocate(function)
    assert run_lir_checkers(function, result).ok


def test_lir_structure_flags_bogus_successor():
    function = lowered()
    block = function.blocks[function.entry]
    block.successors.append(999)
    fired, report = erroring_checkers(function)
    assert fired == {"lir-structure"}
    messages = " ".join(v.message for v in report.errors())
    assert "L999" in messages


def test_lir_liveness_flags_undefined_vreg():
    function = lowered()
    ghost = fresh_vreg("ghost")
    entry = function.blocks[function.entry]
    entry.instructions.insert(0, LirMove(fresh_vreg("dst"), ghost))
    fired, report = erroring_checkers(function)
    assert fired == {"lir-liveness"}
    assert "used but never defined" in report.errors()[0].message


def test_lir_allocation_flags_unmapped_interval():
    function = lowered()
    result = allocate(function)
    victim = next(iter(result.mapping))
    del result.mapping[victim]
    fired, report = erroring_checkers(function, result)
    assert fired == {"lir-allocation"}
    assert "no allocated location" in report.errors()[0].message


def test_lir_allocation_flags_overlapping_intervals_sharing_a_register():
    function = lowered()
    a, b = fresh_vreg("a"), fresh_vreg("b")
    result = AllocationResult(
        mapping={a: PReg(0), b: PReg(0)},
        intervals=[LiveInterval(a, 0, 10), LiveInterval(b, 5, 15)],
    )
    # Only exercise the allocation checker: the fabricated result does
    # not correspond to the function's own (still virtual) operands.
    report = run_lir_checkers(function, result, checkers=["lir-allocation"])
    assert any("share register r0" in v.message for v in report.errors())


def test_lir_allocation_flags_leftover_vreg_after_allocation():
    function = lowered()
    result = allocate(function)
    leftover = fresh_vreg("leftover")
    exit_block = function.blocks[function.entry]
    exit_block.instructions.insert(0, LirMove(PReg(0), leftover))
    fired, report = erroring_checkers(function, result)
    assert "lir-allocation" in fired
    assert any(
        "unallocated virtual register" in v.message for v in report.errors()
    )


def test_lir_allocation_flags_mixed_operands_before_allocation():
    function = lowered()
    block = function.blocks[function.entry]
    moves = [i for i in block.instructions if isinstance(i, LirMove)]
    if not moves:
        block.instructions.insert(0, LirMove(fresh_vreg("d"), fresh_vreg("s")))
        moves = [block.instructions[0]]
    moves[0].src = StackSlot(0)
    fired, report = erroring_checkers(function)
    assert "lir-allocation" in fired
    assert any("mixes virtual and allocated" in v.message for v in report.errors())
