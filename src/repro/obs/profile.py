"""Aggregated compile profiles: where time, nodes and size go.

:class:`CompileProfile` folds a trace (live :class:`Tracer` or parsed
JSONL events) into the questions a compiler engineer actually asks:

* which *phases* are hot (count, total/mean/max wall time, cumulative
  node and code-size deltas);
* which *functions* are expensive to compile;
* what DBDS decided (accept/reject breakdown by reason, and which
  enabled optimizations the accepted duplications paid for).

Exposed on the CLI as ``python -m repro trace prog.mini`` and the
``--profile-compile`` flag of ``run``/``compile``/``bench``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Union

from .sinks import trace_counters
from .tracer import Event, Tracer


@dataclass
class PhaseStat:
    """Aggregate of every span of one phase."""

    phase: str
    count: int = 0
    total: float = 0.0
    max_dur: float = 0.0
    nodes_delta: int = 0
    size_delta: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class CompileProfile:
    """One trace, aggregated."""

    phases: dict[str, PhaseStat] = field(default_factory=dict)
    #: function name -> total compile-span seconds
    functions: dict[str, float] = field(default_factory=dict)
    #: DBDS decision tallies
    accepted: int = 0
    rejected: int = 0
    #: rejection reason -> count
    reject_reasons: dict[str, int] = field(default_factory=dict)
    #: optimization tag -> times enabled by an accepted duplication
    applied: dict[str, int] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    total_time: float = 0.0

    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls,
        events: Iterable[Event],
        counters: Optional[dict[str, int]] = None,
    ) -> "CompileProfile":
        events = list(events)
        profile = cls(counters=dict(counters or trace_counters(events)))
        for event in events:
            if event.kind == "span" and event.name == "phase":
                profile._add_phase_span(event)
            elif event.kind == "span" and event.name == "compile":
                function = str(event.attrs.get("function", "?"))
                profile.functions[function] = (
                    profile.functions.get(function, 0.0) + (event.dur or 0.0)
                )
                profile.total_time += event.dur or 0.0
            elif event.name == "dbds.decision":
                profile._add_decision(event)
        for name, value in profile.counters.items():
            prefix = "dbds.applied."
            if name.startswith(prefix):
                tag = name[len(prefix):]
                profile.applied[tag] = profile.applied.get(tag, 0) + value
        return profile

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "CompileProfile":
        return cls.from_events(tracer.events, counters=tracer.counters)

    # ------------------------------------------------------------------
    def _add_phase_span(self, event: Event) -> None:
        name = str(event.attrs.get("phase", event.name))
        stat = self.phases.setdefault(name, PhaseStat(phase=name))
        stat.count += 1
        dur = event.dur or 0.0
        stat.total += dur
        stat.max_dur = max(stat.max_dur, dur)
        stat.nodes_delta += int(event.attrs.get("nodes_delta", 0))
        stat.size_delta += float(event.attrs.get("size_delta", 0.0))

    def _add_decision(self, event: Event) -> None:
        if event.attrs.get("accepted"):
            self.accepted += 1
        else:
            self.rejected += 1
            reason = str(event.attrs.get("reason", "unknown"))
            self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1

    # ------------------------------------------------------------------
    def hottest_phases(self, n: int = 10) -> list[PhaseStat]:
        return sorted(self.phases.values(), key=lambda s: -s.total)[:n]

    def hottest_functions(self, n: int = 10) -> list[tuple[str, float]]:
        return sorted(self.functions.items(), key=lambda kv: -kv[1])[:n]

    def to_json(self) -> dict[str, Any]:
        return {
            "total_time": self.total_time,
            "phases": {
                name: {
                    "count": s.count,
                    "total": s.total,
                    "mean": s.mean,
                    "max": s.max_dur,
                    "nodes_delta": s.nodes_delta,
                    "size_delta": s.size_delta,
                }
                for name, s in self.phases.items()
            },
            "functions": dict(self.functions),
            "dbds": {
                "accepted": self.accepted,
                "rejected": self.rejected,
                "reject_reasons": dict(self.reject_reasons),
                "applied": dict(self.applied),
            },
            "counters": dict(self.counters),
        }

    # ------------------------------------------------------------------
    def format(self, top: int = 10) -> str:
        """Human-readable profile, compiler-log style."""
        lines = [f"compile profile ({self.total_time * 1e3:.2f} ms total)"]
        lines.append(
            f"  {'phase':<28s}{'runs':>6s}{'total ms':>10s}"
            f"{'mean ms':>9s}{'max ms':>9s}{'dnodes':>8s}{'dsize':>9s}"
        )
        for stat in self.hottest_phases(top):
            lines.append(
                f"  {stat.phase:<28s}{stat.count:>6d}"
                f"{stat.total * 1e3:>10.2f}{stat.mean * 1e3:>9.3f}"
                f"{stat.max_dur * 1e3:>9.3f}{stat.nodes_delta:>+8d}"
                f"{stat.size_delta:>+9.0f}"
            )
        hot = self.hottest_functions(top)
        if hot:
            lines.append("  hottest functions:")
            for name, dur in hot:
                lines.append(f"    {name:<26s}{dur * 1e3:>10.2f} ms")
        total = self.accepted + self.rejected
        if total:
            lines.append(
                f"  dbds decisions: {total} "
                f"({self.accepted} accepted, {self.rejected} rejected)"
            )
            for reason, count in sorted(
                self.reject_reasons.items(), key=lambda kv: -kv[1]
            ):
                lines.append(f"    reject x{count}: {reason}")
        if self.applied:
            lines.append("  optimizations enabled by duplication:")
            for tag, count in sorted(self.applied.items(), key=lambda kv: -kv[1]):
                lines.append(f"    {tag:<26s}{count:>6d}")
        return "\n".join(lines)
