"""One targeted corruption per checker.

Each test breaks exactly one invariant and asserts that the checker
owning it — and only that checker — reports an error, which is what
makes phase-blame diagnostics name the right property.
"""

from __future__ import annotations

from repro.analysis import run_checkers, stamp_admits, check_stamp_dynamic
from repro.frontend.irbuilder import compile_source
from repro.ir import (
    ArithOp,
    BinOp,
    CmpOp,
    Compare,
    Goto,
    Graph,
    If,
    INT,
    Phi,
    Return,
)
from repro.ir.loops import LoopForest
from repro.ir.stamps import BoolStamp, IntStamp, ObjectStamp

from tests.helpers import build_diamond


def erroring_checkers(graph) -> tuple[set, object]:
    report = run_checkers(graph)
    return {v.checker for v in report.errors()}, report


# ----------------------------------------------------------------------
# One corruption per checker
# ----------------------------------------------------------------------
def test_block_structure_flags_bad_probability(diamond):
    diamond["graph"].entry.terminator.true_probability = 1.5
    fired, report = erroring_checkers(diamond["graph"])
    assert fired == {"block-structure"}
    assert "probability 1.5" in report.errors()[0].message


def test_edge_consistency_flags_desynced_predecessor_lists(diamond):
    # Retarget the true branch behind the edge bookkeeping's back.
    diamond["true_block"].terminator._targets[0] = diamond["true_block"]
    fired, report = erroring_checkers(diamond["graph"])
    assert fired == {"edge-consistency"}
    messages = " ".join(v.message for v in report.errors())
    assert "recorded 0 times" in messages or "no such edge" in messages


def test_phi_inputs_flags_dropped_input(diamond):
    diamond["phi"]._remove_input_at(1)
    fired, report = erroring_checkers(diamond["graph"])
    assert fired == {"phi-inputs"}
    assert "has 1 inputs but m has 2 predecessors" in report.errors()[0].message


def _ordered_diamond():
    """A diamond whose phi input is only valid for one specific slot."""
    g = Graph("ordered", [("x", INT)], INT)
    x = g.parameters[0]
    bt, bf, bm = g.new_block("t"), g.new_block("f"), g.new_block("m")
    cond = g.entry.append(Compare(CmpOp.GT, x, g.const_int(0)))
    g.entry.set_terminator(If(cond, bt, bf, 0.5))
    doubled = bt.append(ArithOp(BinOp.MUL, x, g.const_int(2)))
    bt.set_terminator(Goto(bm))
    bf.set_terminator(Goto(bm))
    phi = Phi(bm, INT, [doubled, g.const_int(0)])
    bm.add_phi(phi)
    bm.set_terminator(Return(phi))
    return g, bm


def test_phi_ordering_flags_misordered_predecessors():
    graph, merge = _ordered_diamond()
    assert run_checkers(graph).ok
    merge.predecessors.reverse()
    fired, report = erroring_checkers(graph)
    assert fired == {"phi-ordering"}
    assert "does not dominate" in report.errors()[0].message


def test_ssa_dominance_flags_def_that_stopped_dominating(diamond):
    # Move the add from the merge into the true branch: its phi operand
    # no longer dominates it, and the Return's operand sinks with it.
    add, merge, bt = diamond["add"], diamond["merge"], diamond["true_block"]
    merge.instructions.remove(add)
    add.block = bt
    bt.instructions.append(add)
    fired, report = erroring_checkers(diamond["graph"])
    assert fired == {"ssa-dominance"}
    assert any("does not dominate" in v.message for v in report.errors())


def test_use_lists_flags_broken_bookkeeping(diamond):
    diamond["phi"].uses.clear()
    fired, report = erroring_checkers(diamond["graph"])
    assert fired == {"use-lists"}
    assert "bookkeeping broken" in report.errors()[0].message


def test_stamp_soundness_flags_narrowed_stamp(diamond):
    # The add's operands prove a full 64-bit range; a narrow declared
    # stamp is an unsound narrowing no phase could have produced.
    diamond["add"].stamp = IntStamp(0, 3)
    fired, report = erroring_checkers(diamond["graph"])
    assert fired == {"stamp-soundness"}
    assert "does not cover" in report.errors()[0].message


def test_loop_structure_flags_irreducible_cycle():
    g = Graph("irr", [("x", INT)], INT)
    x = g.parameters[0]
    sa, sb = g.new_block("sa"), g.new_block("sb")
    a, b = g.new_block("a"), g.new_block("b")
    cond = g.entry.append(Compare(CmpOp.GT, x, g.const_int(0)))
    g.entry.set_terminator(If(cond, sa, sb, 0.5))
    sa.set_terminator(Goto(a))
    sb.set_terminator(Goto(b))
    a.set_terminator(Goto(b))
    b.set_terminator(Goto(a))  # two-entry cycle: not a natural loop
    fired, report = erroring_checkers(g)
    assert fired == {"loop-structure"}
    assert "irreducible" in report.errors()[0].message


LOOP_SOURCE = """
fn main(n: int) -> int {
  var i: int = 0;
  var s: int = 0;
  while (i < n) {
    s = s + i;
    i = i + 1;
  }
  return s;
}
"""


def test_block_frequency_flags_negative_trip_count():
    graph = compile_source(LOOP_SOURCE).function("main")
    assert run_checkers(graph).ok
    header = LoopForest(graph).loops[0].header
    header.profile_trip_count = -3.0
    fired, report = erroring_checkers(graph)
    assert fired == {"block-frequency"}
    assert "invalid trip count" in report.errors()[0].message


# ----------------------------------------------------------------------
# Dynamic stamp checking helpers
# ----------------------------------------------------------------------
def test_stamp_admits():
    assert stamp_admits(IntStamp(0, 10), 5)
    assert not stamp_admits(IntStamp(0, 10), 11)
    assert not stamp_admits(IntStamp(0, 10), True)  # bools are not ints
    assert stamp_admits(BoolStamp(can_be_true=True, can_be_false=False), True)
    assert not stamp_admits(BoolStamp(can_be_true=False, can_be_false=True), True)
    assert stamp_admits(ObjectStamp(type=None), None)
    assert not stamp_admits(ObjectStamp(type=None, non_null=True), None)


def test_check_stamp_dynamic_reports_out_of_range_value(diamond):
    add = diamond["add"]
    add.stamp = IntStamp(0, 3)
    assert check_stamp_dynamic(add, 2) is None
    message = check_stamp_dynamic(add, 99)
    assert message is not None and "outside its declared stamp" in message
