"""Run the bundled MiniLang applications under every configuration.

The `.mini` files in examples/apps/ are real(istic) programs — an
N-Queens solver, a word-frequency histogram and a fixed-point matrix
exponentiator.  This script JIT-compiles each under baseline / DBDS /
dupalot, checks the results agree, and prints the performance picture.

Run:  python examples/run_apps.py
"""

import pathlib

from repro import BASELINE, DBDS, DUPALOT, compile_and_profile, measure_performance

APPS = {
    "nqueens": {"profile": [[5]], "measure": [[7]]},
    "wordfreq": {"profile": [[60]], "measure": [[400]]},
    "matrix": {"profile": [[3]], "measure": [[9]]},
}


def main() -> None:
    apps_dir = pathlib.Path(__file__).parent / "apps"
    print(f"{'app':<10s}{'config':<10s}{'result':>12s}{'cycles':>12s}"
          f"{'speedup':>9s}{'dups':>6s}")
    for app, runs in APPS.items():
        source = (apps_dir / f"{app}.mini").read_text()
        baseline_cycles = None
        reference = None
        for config in (BASELINE, DBDS, DUPALOT):
            program, report = compile_and_profile(
                source, "main", runs["profile"], config
            )
            cycles, results = measure_performance(program, "main", runs["measure"])
            value = results[0].value
            if reference is None:
                reference = value
                baseline_cycles = cycles
            assert value == reference, f"{app}: {config.name} changed the result"
            speedup = (baseline_cycles / cycles - 1) * 100
            print(
                f"{app:<10s}{config.name:<10s}{value:>12d}{cycles:>12.0f}"
                f"{speedup:>+8.1f}%{report.total_duplications:>6d}"
            )
        print()


if __name__ == "__main__":
    main()
