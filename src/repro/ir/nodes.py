"""IR values, instructions and terminators.

The IR is a block-structured SSA program representation:

* Every :class:`Value` produces at most one result (Graal IR property).
* :class:`Constant` and :class:`Parameter` are block-less values owned by
  the graph; all other values are :class:`Instruction` objects appended
  to a basic block, except :class:`Phi` which lives in a merge block's
  phi list with one input per ordered predecessor.
* Terminators (:class:`Goto`, :class:`If`, :class:`Return`) end a block
  and are *users* of values but not values themselves.

Use-def chains are maintained eagerly: ``value.uses`` maps each user to
the number of operand slots it occupies, which makes
``replace_all_uses`` and dead-code detection O(uses).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from . import stamps as st
from .ops import BinOp, CmpOp
from .types import BOOL, INT, VOID, ArrayType, ObjectType, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .block import Block

_ids = itertools.count()


class Value:
    """Anything that can be used as an operand: it has a stamp and uses."""

    def __init__(self, stamp: st.Stamp) -> None:
        self.id: int = next(_ids)
        self.stamp: st.Stamp = stamp
        self.uses: dict[User, int] = {}

    @property
    def type(self) -> Type:
        """Static type derived from the stamp kind."""
        s = self.stamp
        if isinstance(s, st.IntStamp):
            return INT
        if isinstance(s, st.BoolStamp):
            return BOOL
        if isinstance(s, st.ObjectStamp):
            return s.type
        return VOID

    @property
    def name(self) -> str:
        return f"v{self.id}"

    def _add_use(self, user: "User") -> None:
        self.uses[user] = self.uses.get(user, 0) + 1

    def _remove_use(self, user: "User") -> None:
        n = self.uses.get(user, 0)
        if n <= 1:
            self.uses.pop(user, None)
        else:
            self.uses[user] = n - 1

    def has_uses(self) -> bool:
        return bool(self.uses)

    def replace_all_uses(self, replacement: "Value") -> None:
        """Rewrite every user of this value to use ``replacement``."""
        if replacement is self:
            return
        for user in list(self.uses):
            user.replace_input(self, replacement)

    def __repr__(self) -> str:
        return self.name


class User:
    """Base for everything holding operand slots (instructions, phis,
    terminators). Manages use-def bookkeeping for its inputs."""

    def __init__(self, inputs: list[Value]) -> None:
        self._inputs: list[Value] = list(inputs)
        for v in self._inputs:
            v._add_use(self)

    @property
    def inputs(self) -> tuple[Value, ...]:
        return tuple(self._inputs)

    def input(self, index: int) -> Value:
        return self._inputs[index]

    def set_input(self, index: int, new: Value) -> None:
        old = self._inputs[index]
        if old is new:
            return
        old._remove_use(self)
        self._inputs[index] = new
        new._add_use(self)

    def replace_input(self, old: Value, new: Value) -> None:
        """Replace *all* operand slots holding ``old`` with ``new``."""
        for i, v in enumerate(self._inputs):
            if v is old:
                self.set_input(i, new)

    def drop_inputs(self) -> None:
        """Deregister all uses; called when the user is deleted."""
        for v in self._inputs:
            v._remove_use(self)
        self._inputs = []

    def _append_input(self, v: Value) -> None:
        self._inputs.append(v)
        v._add_use(self)

    def _remove_input_at(self, index: int) -> None:
        self._inputs[index]._remove_use(self)
        del self._inputs[index]


class Constant(Value):
    """A literal constant (int, bool or null). Interned per graph."""

    def __init__(self, value, ty: Type) -> None:
        super().__init__(st.stamp_for_constant(value, ty))
        self.value = value
        self._type = ty

    @property
    def type(self) -> Type:
        return self._type

    def __repr__(self) -> str:
        if self.value is None:
            return "null"
        if self._type == BOOL:
            return "true" if self.value else "false"
        return f"c{self.value}"


class Parameter(Value):
    """A function parameter, identified by its position."""

    def __init__(self, index: int, pname: str, ty: Type) -> None:
        super().__init__(st.stamp_for_type(ty))
        self.index = index
        self.param_name = pname

    def __repr__(self) -> str:
        return f"p{self.index}:{self.param_name}"


class Instruction(User, Value):
    """An SSA instruction scheduled inside a basic block."""

    def __init__(self, inputs: list[Value], stamp: st.Stamp) -> None:
        Value.__init__(self, stamp)
        User.__init__(self, inputs)
        self.block: Optional["Block"] = None

    #: Whether executing the instruction writes memory / allocates / calls.
    has_side_effect: bool = False
    #: Whether the instruction may raise a runtime trap.
    can_trap: bool = False

    @property
    def is_removable(self) -> bool:
        """Dead-code eliminable when unused."""
        return not self.has_side_effect and not self.can_trap

    def op_name(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        operands = " ".join(repr(v) for v in self._inputs)
        return f"{self.name} = {self.op_name()} {operands}".rstrip()


class ArithOp(Instruction):
    """Binary integer arithmetic/bitwise operation."""

    def __init__(self, op: BinOp, x: Value, y: Value) -> None:
        super().__init__([x, y], st.ANY_INT)
        self.op = op

    @property
    def can_trap(self) -> bool:  # type: ignore[override]
        return self.op.can_trap

    @property
    def x(self) -> Value:
        return self._inputs[0]

    @property
    def y(self) -> Value:
        return self._inputs[1]

    def op_name(self) -> str:
        return self.op.name.capitalize()


class Compare(Instruction):
    """Comparison producing a boolean; EQ/NE also compare references."""

    def __init__(self, op: CmpOp, x: Value, y: Value) -> None:
        super().__init__([x, y], st.ANY_BOOL)
        self.op = op

    @property
    def x(self) -> Value:
        return self._inputs[0]

    @property
    def y(self) -> Value:
        return self._inputs[1]

    def op_name(self) -> str:
        return f"Cmp{self.op.name}"


class Not(Instruction):
    """Boolean negation."""

    def __init__(self, x: Value) -> None:
        super().__init__([x], st.ANY_BOOL)

    @property
    def x(self) -> Value:
        return self._inputs[0]


class Neg(Instruction):
    """Integer negation (wraps on INT_MIN)."""

    def __init__(self, x: Value) -> None:
        super().__init__([x], st.ANY_INT)

    @property
    def x(self) -> Value:
        return self._inputs[0]


class Phi(Instruction):
    """An SSA phi: one input per ordered predecessor of its merge block."""

    def __init__(self, block: "Block", ty: Type, inputs: list[Value]) -> None:
        super().__init__(inputs, st.stamp_for_type(ty))
        self.block = block
        self._declared_type = ty

    @property
    def type(self) -> Type:
        return self._declared_type

    def input_for_predecessor_index(self, index: int) -> Value:
        return self._inputs[index]

    def describe(self) -> str:
        pairs = " ".join(
            f"[{pred.name}: {v!r}]"
            for pred, v in zip(self.block.predecessors, self._inputs)
        )
        return f"{self.name} = Phi {pairs}"


class New(Instruction):
    """Allocate an object of a declared class; fields start at defaults."""

    has_side_effect = True

    def __init__(self, ty: ObjectType) -> None:
        super().__init__([], st.ObjectStamp(ty, non_null=True))
        self.object_type = ty

    def op_name(self) -> str:
        return f"New {self.object_type.class_name}"


class LoadField(Instruction):
    """Read ``obj.field``; traps when obj is null."""

    can_trap = True

    def __init__(self, obj: Value, field: str, ty: Type) -> None:
        super().__init__([obj], st.stamp_for_type(ty))
        self.field = field
        self._declared_type = ty

    @property
    def type(self) -> Type:
        return self._declared_type

    @property
    def obj(self) -> Value:
        return self._inputs[0]

    def op_name(self) -> str:
        return f"LoadField .{self.field}"


class StoreField(Instruction):
    """Write ``obj.field = value``; traps when obj is null."""

    has_side_effect = True
    can_trap = True

    def __init__(self, obj: Value, field: str, value: Value) -> None:
        super().__init__([obj, value], st.VOID_STAMP)
        self.field = field

    @property
    def obj(self) -> Value:
        return self._inputs[0]

    @property
    def value(self) -> Value:
        return self._inputs[1]

    def op_name(self) -> str:
        return f"StoreField .{self.field}"


class LoadGlobal(Instruction):
    """Read a program-level global variable."""

    def __init__(self, gname: str, ty: Type) -> None:
        super().__init__([], st.stamp_for_type(ty))
        self.global_name = gname
        self._declared_type = ty

    @property
    def type(self) -> Type:
        return self._declared_type

    def op_name(self) -> str:
        return f"LoadGlobal {self.global_name}"


class StoreGlobal(Instruction):
    """Write a program-level global variable."""

    has_side_effect = True

    def __init__(self, gname: str, value: Value) -> None:
        super().__init__([value], st.VOID_STAMP)
        self.global_name = gname

    @property
    def value(self) -> Value:
        return self._inputs[0]

    def op_name(self) -> str:
        return f"StoreGlobal {self.global_name}"


class NewArray(Instruction):
    """Allocate an array of the given length; traps on negative length."""

    has_side_effect = True
    can_trap = True

    def __init__(self, element: Type, length: Value) -> None:
        super().__init__([length], st.ObjectStamp(ArrayType(element), non_null=True))
        self.element_type = element

    @property
    def length(self) -> Value:
        return self._inputs[0]

    def op_name(self) -> str:
        return f"NewArray {self.element_type!r}"


class ArrayLoad(Instruction):
    """Read ``arr[index]``; traps on null array / out-of-bounds index."""

    can_trap = True

    def __init__(self, array: Value, index: Value, ty: Type) -> None:
        super().__init__([array, index], st.stamp_for_type(ty))
        self._declared_type = ty

    @property
    def type(self) -> Type:
        return self._declared_type

    @property
    def array(self) -> Value:
        return self._inputs[0]

    @property
    def index(self) -> Value:
        return self._inputs[1]


class ArrayStore(Instruction):
    """Write ``arr[index] = value``; traps like :class:`ArrayLoad`."""

    has_side_effect = True
    can_trap = True

    def __init__(self, array: Value, index: Value, value: Value) -> None:
        super().__init__([array, index, value], st.VOID_STAMP)

    @property
    def array(self) -> Value:
        return self._inputs[0]

    @property
    def index(self) -> Value:
        return self._inputs[1]

    @property
    def value(self) -> Value:
        return self._inputs[2]


class ArrayLength(Instruction):
    """Length of an array; traps when the array is null."""

    can_trap = True

    def __init__(self, array: Value) -> None:
        super().__init__([array], st.IntStamp(0, st.INT_MAX))

    @property
    def array(self) -> Value:
        return self._inputs[0]


class Call(Instruction):
    """Direct call to a named function of the same program."""

    has_side_effect = True
    can_trap = True

    def __init__(self, callee: str, args: list[Value], return_type: Type) -> None:
        super().__init__(list(args), st.stamp_for_type(return_type))
        self.callee = callee
        self._declared_type = return_type

    @property
    def type(self) -> Type:
        return self._declared_type

    @property
    def args(self) -> tuple[Value, ...]:
        return self.inputs

    def op_name(self) -> str:
        return f"Call {self.callee}"


class Terminator(User):
    """Block-ending control transfer. Not a value."""

    def __init__(self, inputs: list[Value], targets: list["Block"]) -> None:
        super().__init__(inputs)
        self.block: Optional["Block"] = None
        self._targets: list["Block"] = list(targets)

    @property
    def targets(self) -> tuple["Block", ...]:
        return tuple(self._targets)

    def set_target(self, slot: int, new: "Block") -> None:
        """Retarget one successor slot, maintaining predecessor lists.

        The caller is responsible for providing phi inputs when the new
        target has phis (normally it has none: critical edges are split).
        """
        old = self._targets[slot]
        if old is new:
            return
        if self.block is not None:
            old.remove_predecessor(self.block)
        self._targets[slot] = new
        if self.block is not None:
            new.add_predecessor(self.block)

    def describe(self) -> str:
        raise NotImplementedError


class Goto(Terminator):
    """Unconditional jump."""

    def __init__(self, target: "Block") -> None:
        super().__init__([], [target])

    @property
    def target(self) -> "Block":
        return self._targets[0]

    def describe(self) -> str:
        return f"Goto {self.target.name}"


class If(Terminator):
    """Two-way conditional branch with a profiled probability of taking
    the true successor (HotSpot-profile stand-in, see DESIGN.md)."""

    def __init__(
        self,
        condition: Value,
        true_target: "Block",
        false_target: "Block",
        true_probability: float = 0.5,
    ) -> None:
        super().__init__([condition], [true_target, false_target])
        self.true_probability = true_probability

    @property
    def condition(self) -> Value:
        return self._inputs[0]

    @property
    def true_target(self) -> "Block":
        return self._targets[0]

    @property
    def false_target(self) -> "Block":
        return self._targets[1]

    def probability_of(self, target: "Block") -> float:
        """Edge probability toward ``target`` (targets are distinct)."""
        return self.true_probability if target is self.true_target else 1.0 - self.true_probability

    def describe(self) -> str:
        return (
            f"If {self.condition!r} ? {self.true_target.name} "
            f": {self.false_target.name} (p={self.true_probability:.2f})"
        )


class Return(Terminator):
    """Return from the function, optionally with a value."""

    def __init__(self, value: Optional[Value]) -> None:
        super().__init__([value] if value is not None else [], [])

    @property
    def value(self) -> Optional[Value]:
        return self._inputs[0] if self._inputs else None

    def describe(self) -> str:
        return f"Return {self.value!r}" if self.value is not None else "Return"


#: Instructions whose result depends only on their operands, making them
#: safe targets for global value numbering and speculative simulation.
PURE_VALUE_CLASSES = (ArithOp, Compare, Not, Neg)
